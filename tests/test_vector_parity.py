"""Vectorised-vs-reference kernel parity (DESIGN.md §15).

Every numpy-backed kernel must produce *identical* outputs to its
pure-Python reference -- not approximately equal: the golden suites
compare byte-exact artifacts, so a single ULP of drift anywhere in the
data plane would show up as a golden mismatch.  These tests fuzz each
kernel pair directly over seeded randomized inputs, including the
empty/single-element/degenerate shapes, and pin the mode-selection
switchboard itself.
"""

import random

import pytest

from repro import vector
from repro.analysis.metrics import LatencySeries
from repro.crash import linestream as ls
from repro.crash.plans import CrashPlanner
from repro.hw import memory as hw_memory

needs_numpy = pytest.mark.skipif(not vector.HAVE_NUMPY,
                                 reason="numpy not installed")


class TestSwitchboard:
    def test_kill_switch_disables_at_import(self):
        # REPRO_VECTOR is read at import time: a fresh interpreter with
        # the kill switch set must come up in reference mode even with
        # numpy installed.
        import os
        import subprocess
        import sys
        env = dict(os.environ, REPRO_VECTOR="0",
                   PYTHONPATH=os.pathsep.join(sys.path))
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro import vector; "
             "print(vector.ENABLED, vector._KILLED)"],
            env=env, capture_output=True, text=True, check=True)
        assert out.stdout.split() == ["False", "True"]

    def test_set_enabled_without_numpy_stays_reference(self):
        if vector.HAVE_NUMPY:
            pytest.skip("numpy installed: cannot exercise the fallback")
        assert not vector.ENABLED
        assert vector.set_enabled(True) is False
        assert not vector.ENABLED

    @needs_numpy
    def test_forced_restores_previous_mode(self):
        before = vector.ENABLED
        with vector.forced(not before):
            assert vector.ENABLED == (not before)
            with vector.forced(before):
                assert vector.ENABLED == before
            assert vector.ENABLED == (not before)
        assert vector.ENABLED == before

    def test_reference_kernels_run_without_vector_mode(self):
        # The fallback is first-class: everything must work in
        # reference mode whether or not numpy exists.
        with vector.forced(False):
            assert hw_memory._waterfill_kernel is hw_memory._waterfill_compute
            rates = hw_memory._waterfill_compute([1.0, 2.0], [5.0, 5.0], 6.0)
            assert sum(rates) == pytest.approx(6.0)
            s = LatencySeries()
            for v in (5, 1, 9):
                s.record(v)
            assert s.p50() == 5.0


class TestWaterfillParity:
    @needs_numpy
    def test_seeded_random_shapes(self):
        rng = random.Random(0xA11C)
        for trial in range(400):
            n = rng.choice([0, 1, 2, 3, 7, 15, 16, 17, 33, 64, 200])
            demands = [rng.choice([1.0, 2.0, 0.5, float(rng.randint(1, 9))])
                       for _ in range(n)]
            caps = [rng.uniform(1e-6, 20.0) for _ in range(n)]
            capacity = rng.choice([0.0, 1e-13, rng.uniform(0.01, 100.0)])
            ref = hw_memory._waterfill_compute(demands, caps, capacity)
            vec = hw_memory._waterfill_compute_np(demands, caps, capacity)
            assert ref == vec, (trial, n, capacity)
            assert hw_memory._waterfill_dispatch(demands, caps,
                                                 capacity) == ref

    @needs_numpy
    def test_degenerate_shapes(self):
        cases = [
            ([], [], 5.0),                       # no entities
            ([1.0], [3.0], 5.0),                 # single, capacity-rich
            ([1.0], [3.0], 0.0),                 # nothing to allocate
            ([0.0, 0.0], [1.0, 1.0], 5.0),       # zero total weight
            ([1.0] * 20, [0.0] * 20, 5.0),       # everyone capped at 0
            ([1.0] * 20, [1e-9] * 20, 1e9),      # instant freeze-all
        ]
        for demands, caps, capacity in cases:
            assert hw_memory._waterfill_compute(demands, caps, capacity) \
                == hw_memory._waterfill_compute_np(demands, caps, capacity)

    @needs_numpy
    def test_memo_serves_identical_rates_across_modes(self):
        demands, caps, capacity = [1.0] * 24, [2.0] * 24, 10.0
        with vector.forced(True):
            a = hw_memory._waterfill(demands, caps, capacity)
        with vector.forced(False):
            b = hw_memory._waterfill(demands, caps, capacity)
        assert a == b


def _synth_stream(rng: random.Random) -> ls.LineStream:
    """A randomized but well-formed line stream: CPU trains, DMA
    announcements with completions/cancellations, records, atomics,
    bookkeeping -- the shapes the real emitters produce."""
    stream = ls.LineStream()
    sn = {0: 0, 1: 0}
    outstanding = []            # (ch, sn) announced, not yet resolved
    pid = 0
    n_ops = rng.randint(0, 40)
    start = 0
    for op in range(n_ops):
        for _ in range(rng.randint(1, 5)):
            kind = rng.randrange(8)
            if kind == 0:                      # CPU page train + fence
                for _ in range(rng.randint(1, 3)):
                    pid += 1
                    stream.page_write(
                        pid, bytes([rng.randrange(256)]) * rng.choice(
                            [1, 64, 200, 4096]))
                stream.pages_fence()
            elif kind == 1:                    # log append (record)
                stream.store("log-append", ("log", op),
                             (op, f"entry-{op}-{pid}"),
                             nlines=rng.randint(1, 4))
                if rng.random() < 0.8:
                    stream.fence("append:str")
            elif kind == 2:                    # atomic tail commit
                stream.log_commit(op, rng.randrange(1000))
            elif kind == 3:                    # DMA announcement
                ch = rng.randrange(2)
                sn[ch] += 1
                pids = [pid + 1 + i for i in range(rng.randint(1, 3))]
                pid = pids[-1]
                stream.announce_dma_pages(
                    ch, sn[ch], pids,
                    [bytes([p & 0xFF]) * 4096 for p in pids])
                outstanding.append((ch, sn[ch]))
            elif kind == 4 and outstanding:    # completion fence
                ch, s = outstanding.pop(rng.randrange(len(outstanding)))
                stream.completion_update(ch, s)
            elif kind == 5 and outstanding:    # failed descriptor
                ch, s = outstanding.pop(rng.randrange(len(outstanding)))
                stream.error_log(ch, (s,))
            elif kind == 6:                    # journal txn
                stream.journal_begin(("txn", op))
                if rng.random() < 0.5:
                    stream.journal_retire()
            else:                              # bookkeeping
                stream.alloc_ino(op + 1)
                stream.alloc_pages(pid + 1)
        end = stream.position()
        stream.op_bounds.append((start, end))
        start = end
    return stream


def _img_state(img):
    return (dict(img.pages), {k: list(v) for k, v in img.logs.items()},
            dict(img.log_tails), dict(img.inodes), list(img.journal),
            dict(img.completion_buffers),
            {k: set(v) for k, v in img.channel_error_sns.items()},
            img.next_ino, img.next_page)


@needs_numpy
class TestLineStreamParity:
    def test_durability_and_replay_on_seeded_streams(self):
        rng = random.Random(0xBEEF)
        for trial in range(25):
            stream = _synth_stream(rng)
            n = len(stream.records)
            points = sorted({0, 1 if n else 0, n}
                            | {rng.randrange(n + 1) for _ in range(10)})
            for pt in points:
                assert ls._base_durable_ref(stream, pt) \
                    == ls._base_durable_np(stream, pt), (trial, pt)
                assert [r.seq for r in ls._in_flight_ref(stream, pt)] \
                    == [r.seq for r in ls._in_flight_np(stream, pt)]
            # Random plans: arbitrary applied subsets + partials.
            for pt in points:
                flight = ls._in_flight_ref(stream, pt)
                applied = frozenset(r.seq for r in flight
                                    if rng.random() < 0.5)
                partials = tuple(
                    (r.seq, tuple(sorted(rng.sample(
                        range(r.nlines), rng.randint(1, r.nlines)))))
                    for r in flight
                    if r.nlines > 1 and r.klass in ("data", "record")
                    and rng.random() < 0.3)
                from types import SimpleNamespace
                plan = SimpleNamespace(point=pt, applied=applied,
                                       partials=partials)
                a = _img_state(ls._replay_plan_ref(stream, plan))
                b = _img_state(ls._replay_plan_np(stream, plan))
                assert a == b, (trial, pt)

    def test_replay_full_identical_both_modes(self):
        rng = random.Random(7)
        for _ in range(5):
            stream = _synth_stream(rng)
            with vector.forced(True):
                a = _img_state(ls.replay_full(stream))
            with vector.forced(False):
                b = _img_state(ls.replay_full(stream))
            assert a == b

    def test_empty_stream(self):
        stream = ls.LineStream()
        assert ls._base_durable_ref(stream, 0) \
            == ls._base_durable_np(stream, 0) == set()
        assert ls._in_flight_np(stream, 0) == []
        with vector.forced(True):
            img = ls.replay_full(stream)
        assert not img.pages and not img.logs

    def test_index_invalidated_by_stream_growth(self):
        stream = ls.LineStream()
        stream.page_write(1, b"x" * 64)
        stream.pages_fence()
        first = ls._base_durable_np(stream, stream.position())
        assert first == {0}
        stream.page_write(2, b"y" * 64)
        stream.pages_fence()
        assert ls._base_durable_np(stream, stream.position()) == {0, 2}
        assert ls._base_durable_ref(stream, stream.position()) == {0, 2}

    def test_cancellation_after_index_build(self):
        # cancel_sns arrives without appending records; the cached
        # index must not bake the cancelled set in.
        stream = ls.LineStream()
        stream.announce_dma_pages(0, 1, [1], [b"a" * 4096])
        stream.completion_update(0, 1)
        pt = stream.position()
        assert ls._base_durable_np(stream, pt) \
            == ls._base_durable_ref(stream, pt)
        stream.cancel_sns(0, [1])
        assert ls._base_durable_np(stream, pt) \
            == ls._base_durable_ref(stream, pt)


@needs_numpy
class TestPlannerParity:
    def test_identical_plan_lists_on_seeded_streams(self):
        rng = random.Random(0xCAFE)
        for trial in range(10):
            stream = _synth_stream(rng)
            for per_sig, budget in ((3, None), (None, None), (2, 20)):
                with vector.forced(True):
                    pa = CrashPlanner(stream, per_signature=per_sig,
                                      budget=budget, seed=trial)
                    a = pa.plans()
                with vector.forced(False):
                    pb = CrashPlanner(stream, per_signature=per_sig,
                                      budget=budget, seed=trial)
                    b = pb.plans()
                assert (pa.raw_states, pa.positions) \
                    == (pb.raw_states, pb.positions)
                assert [(p.point, p.cls, p.applied, p.partials, p.lo,
                         p.hi, p.signature) for p in a] \
                    == [(p.point, p.cls, p.applied, p.partials, p.lo,
                         p.hi, p.signature) for p in b], trial


class TestPercentileParity:
    @needs_numpy
    def test_seeded_random_series(self):
        rng = random.Random(0xFEED)
        for trial in range(150):
            n = rng.choice([0, 1, 2, 3, 64, 65, 100, 1000])
            samples = [rng.randint(0, 10 ** rng.choice([3, 9, 12]))
                       for _ in range(n)]
            ps = ([rng.uniform(1e-6, 100.0) for _ in range(6)]
                  + [50.0, 99.0, 100.0])
            with vector.forced(False):
                r = LatencySeries()
                r.samples.extend(samples)
                ref = [r.percentile(p) for p in ps] + [r.mean(),
                                                       r.maximum()]
            with vector.forced(True):
                v = LatencySeries()
                v.samples.extend(samples)
                vec = [v.percentile(p) for p in ps] + [v.mean(),
                                                       v.maximum()]
            assert ref == vec, trial

    @needs_numpy
    def test_interleaved_tail_merge_path(self):
        rng = random.Random(5)
        with vector.forced(True):
            s = LatencySeries()
            mirror = []
            for step in range(200):
                val = rng.randrange(10 ** 9)
                s.record(val)
                mirror.append(val)
                if step % 3 == 0:
                    # Queries between appends: exercises the
                    # searchsorted tail merge on the ndarray view.
                    assert s.percentile(100) == float(max(mirror))
                    with vector.forced(False):
                        r = LatencySeries()
                        r.samples.extend(mirror)
                        assert s.p50() == r.p50()
                        assert s.p99() == r.p99()

    @needs_numpy
    def test_oversized_samples_fall_back_to_reference(self):
        # Samples beyond int64 force the object-dtype fallback; results
        # must still match the reference exactly.
        huge = [2 ** 70, 1, 2 ** 80, 7]
        with vector.forced(True):
            v = LatencySeries()
            v.samples.extend(huge)
            a = (v.p50(), v.percentile(100))
        with vector.forced(False):
            r = LatencySeries()
            r.samples.extend(huge)
            b = (r.p50(), r.percentile(100))
        assert a == b
