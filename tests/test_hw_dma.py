"""Tests for the I/OAT-style DMA engine model."""

import pytest

from repro.hw.dma import DmaDescriptor
from tests.conftest import run_proc


class TestDescriptor:
    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            DmaDescriptor(0, write=True)

    def test_sn_assigned_at_submit(self, node):
        ch = node.dma.channel(0)
        def body():
            d1 = DmaDescriptor(4096, write=True)
            d2 = DmaDescriptor(4096, write=True)
            yield from ch.submit([d1, d2])
            return (d1.sn, d2.sn)
        assert run_proc(node.engine, body()) == (1, 2)

    def test_batch_size_limit(self, node):
        ch = node.dma.channel(0)
        too_many = [DmaDescriptor(4096, write=True)
                    for _ in range(node.model.dma_batch_max + 1)]
        def body():
            yield from ch.submit(too_many)
        with pytest.raises(ValueError):
            run_proc(node.engine, body())


class TestCompletion:
    def test_completion_buffer_advances(self, node):
        ch = node.dma.channel(0)
        def body():
            d = DmaDescriptor(16384, write=True)
            yield from ch.submit([d])
            yield d.done
        run_proc(node.engine, body())
        assert ch.completion_sn == 1
        assert ch.completion_addr == 1
        assert ch.completion_cnt == 0
        assert ch.queue_depth == 0

    def test_completion_addr_wraps_but_sn_is_monotonic(self, node):
        """The 64-bit completion value wraps around the ring; the
        CNT-extended SN never does (§4.2's core invariant)."""
        ch = node.dma.channel(0)
        ring = node.model.dma_ring_size
        count = ring + 5
        def body():
            sns = []
            for _ in range(count):
                d = DmaDescriptor(4096, write=True)
                yield from ch.submit([d])
                yield d.done
                sns.append(ch.completion_sn)
            return sns
        sns = run_proc(node.engine, body())
        assert sns == sorted(sns)
        assert sns[-1] == count
        assert ch.completion_addr == count % ring
        assert ch.completion_cnt == 1

    def test_completion_event_waits_for_sn(self, node):
        ch = node.dma.channel(0)
        def body():
            d1 = DmaDescriptor(65536, write=True)
            d2 = DmaDescriptor(65536, write=True)
            yield from ch.submit([d1, d2])
            yield ch.completion_event(2)
            return ch.completion_sn
        assert run_proc(node.engine, body()) == 2

    def test_completion_event_for_past_sn_fires_immediately(self, node):
        ch = node.dma.channel(0)
        ev = ch.completion_event(0)
        assert ev.triggered

    def test_is_complete_polling(self, node):
        ch = node.dma.channel(0)
        assert ch.is_complete(0)
        assert not ch.is_complete(1)

    def test_on_complete_runs_before_completion_buffer_update(self, node):
        """The DMA writes its payload, then claims completion -- the
        ordering EasyIO's recovery rule depends on."""
        ch = node.dma.channel(0)
        order = []
        def body():
            d = DmaDescriptor(4096, write=True)
            d.on_complete = lambda _d: order.append(("data", ch.completion_sn))
            ch.on_completion = lambda c: order.append(("buffer", c.completion_sn))
            yield from ch.submit([d])
            yield d.done
        run_proc(node.engine, body())
        assert order == [("data", 0), ("buffer", 1)]

    def test_fifo_service_order(self, node):
        ch = node.dma.channel(0)
        finished = []
        def body():
            descs = [DmaDescriptor(4096, write=True, tag=i) for i in range(4)]
            yield from ch.submit(descs)
            for d in descs:
                yield d.done
                finished.append(d.tag)
        run_proc(node.engine, body())
        assert finished == [0, 1, 2, 3]


class TestSuspendResume:
    def test_suspended_channel_stops_fetching(self, node):
        ch = node.dma.channel(0)
        engine = node.engine
        def body():
            ch.suspend()
            d = DmaDescriptor(4096, write=True)
            yield from ch.submit([d])
            yield engine.timeout(100_000)
            assert not d.done.triggered, "suspended channel served a descriptor"
            ch.resume()
            yield d.done
        run_proc(engine, body())
        assert ch.completion_sn == 1

    def test_in_flight_descriptor_runs_to_completion(self, node):
        ch = node.dma.channel(0)
        engine = node.engine
        def body():
            d = DmaDescriptor(1 << 20, write=True)
            yield from ch.submit([d])
            yield engine.timeout(5000)   # descriptor is mid-transfer
            ch.suspend()
            yield d.done                 # still completes
            return ch.completion_sn
        assert run_proc(engine, body()) == 1

    def test_suspend_mid_transfer_holds_queued_descriptors(self, node):
        """The in-flight descriptor runs to completion; everything
        still in the ring waits for the resume."""
        ch = node.dma.channel(0)
        engine = node.engine
        def body():
            first = DmaDescriptor(1 << 20, write=True)
            rest = [DmaDescriptor(4096, write=True) for _ in range(3)]
            yield from ch.submit([first] + rest)
            yield engine.timeout(5000)     # first is mid-transfer
            ch.suspend()
            yield first.done
            assert ch.completion_sn == 1
            yield engine.timeout(200_000)
            assert not any(d.done.triggered for d in rest), \
                "suspended channel fetched new descriptors"
            ch.resume()
            for d in rest:
                yield d.done
        run_proc(engine, body())
        assert ch.completion_sn == 4

    def test_suspend_resume_across_ring_wraparound(self, node):
        """Suspending with descriptors spanning the ring wraparound
        must not lose or reorder them, and CNT must bump exactly once."""
        ch = node.dma.channel(0)
        ring = node.model.dma_ring_size
        engine = node.engine
        def body():
            for _ in range(ring - 2):
                d = DmaDescriptor(4096, write=True)
                yield from ch.submit([d])
                yield d.done
            ch.suspend()
            descs = [DmaDescriptor(4096, write=True) for _ in range(4)]
            yield from ch.submit(descs)
            yield engine.timeout(200_000)
            assert not any(d.done.triggered for d in descs)
            ch.resume()
            for d in descs:
                yield d.done
            return [d.sn for d in descs]
        sns = run_proc(engine, body())
        assert sns == [ring - 1, ring, ring + 1, ring + 2]
        assert ch.completion_cnt == 1
        assert ch.completion_addr == 2

    def test_completion_event_ordering_across_wraparound(self, node):
        """completion_event waiters fire in SN order even when their
        target SNs span a wraparound and were registered out of order
        (the CNT-extended SN is what orders them, not the raw ADDR)."""
        ch = node.dma.channel(0)
        ring = node.model.dma_ring_size
        fired = []
        def body():
            for sn in (ring - 1, ring + 3, ring + 1):
                ev = ch.completion_event(sn)
                ev.add_callback(lambda e, sn=sn: fired.append(sn))
            for _ in range(ring + 3):
                d = DmaDescriptor(4096, write=True)
                yield from ch.submit([d])
                yield d.done
        run_proc(node.engine, body())
        assert fired == [ring - 1, ring + 1, ring + 3]

    def test_suspended_property(self, node):
        ch = node.dma.channel(0)
        assert not ch.suspended
        ch.suspend()
        assert ch.suspended
        ch.resume()
        assert not ch.suspended


class TestBatching:
    def test_batched_descriptors_amortise_overhead(self, node):
        """A 4-descriptor batch finishes sooner than 4 isolated ones."""
        engine = node.engine

        def timed(batched):
            from repro.hw.platform import Platform, PlatformConfig
            plat = Platform(PlatformConfig.single_node())
            ch = plat.dma.channel(0)
            def body():
                if batched:
                    descs = [DmaDescriptor(4096, write=True) for _ in range(4)]
                    yield from ch.submit(descs)
                    for d in descs:
                        yield d.done
                else:
                    for _ in range(4):
                        d = DmaDescriptor(4096, write=True)
                        yield from ch.submit([d])
                        yield d.done
            t0 = plat.engine.now
            run_proc(plat.engine, body())
            return plat.engine.now - t0

        assert timed(batched=True) < timed(batched=False)


class TestEngineCapacity:
    def test_share_splits_across_serving_channels(self, node):
        eng = node.dma
        assert eng.serving_channels == 0
        s1 = eng.claim_share()
        s2 = eng.claim_share()
        assert s1 == pytest.approx(eng.capacity)
        assert s2 == pytest.approx(eng.capacity / 2)
        eng.release_share()
        eng.release_share()
        assert eng.serving_channels == 0

    def test_concurrent_channels_interfere(self, node):
        """Two channels moving bulk data slow each other down
        (the Fig 4 starvation mechanism)."""
        engine = node.engine
        done = {}
        def mover(chan_id):
            ch = node.dma.channel(chan_id)
            d = DmaDescriptor(1 << 20, write=False, tag=chan_id)
            yield from ch.submit([d])
            yield d.done
            done[chan_id] = engine.now
        engine.process(mover(0))
        engine.process(mover(1))
        engine.run()
        solo = (1 << 20) / min(node.model.dma_channel_read_rate,
                               node.dma.capacity)
        assert min(done.values()) > solo * 1.15

    def test_least_loaded_selection(self, node):
        def body():
            ch0 = node.dma.channel(0)
            descs = [DmaDescriptor(1 << 20, write=True) for _ in range(3)]
            yield from ch0.submit(descs)
            pick = node.dma.least_loaded()
            assert pick.channel_id != 0
            pick_restricted = node.dma.least_loaded(candidates=[0])
            assert pick_restricted.channel_id == 0
        run_proc(node.engine, body())
