"""Stats must reset cleanly between runs (no cross-run leakage).

Long-lived engines and filesystems get reused across measurement runs
(the sweep harness, notebooks, REPL sessions); counters carried over
from a previous run silently inflate the next one's numbers.  Every
stats object therefore has a ``reset()``, and these tests pin both the
reset and the no-leak property for back-to-back runs.
"""

import pytest

from repro.analysis.metrics import FaultStats, OverloadStats
from repro.hw import memory as hw_memory
from repro.hw.params import CostModel
from repro.hw.platform import Platform, PlatformConfig
from repro.net import NetStats
from repro.sim import Engine
from repro.workloads.factory import FS_KINDS, make_fs
from tests.conftest import run_proc


class TestEngineStats:
    def _tick(self, engine, n=5):
        def body():
            for _ in range(n):
                yield engine.sleep(10)
        run_proc(engine, body())

    def test_reset_zeroes_every_counter(self):
        engine = Engine()
        self._tick(engine)
        ev = engine.sleep(1000)
        ev.cancel()
        assert engine.stats.events_fired > 0
        engine.reset_stats()
        assert all(v == 0 for v in engine.stats.as_dict().values())

    def test_engine_still_usable_after_reset(self):
        engine = Engine()
        self._tick(engine)
        engine.reset_stats()
        self._tick(engine)
        assert engine.stats.events_fired > 0

    def test_second_run_counts_only_its_own_events(self):
        """The leakage regression: two identical runs, counted apart,
        must report identical event counts."""
        engine = Engine()
        self._tick(engine, n=7)
        first = engine.stats.events_fired
        engine.reset_stats()
        self._tick(engine, n=7)
        assert engine.stats.events_fired == first


class TestSharedStatsReset:
    @pytest.mark.parametrize("cls", [FaultStats, OverloadStats, NetStats])
    def test_reset_zeroes_every_field(self, cls):
        stats = cls()
        for name in stats.as_dict():
            setattr(stats, name, 3)
        stats.reset()
        assert all(v == 0 for v in stats.as_dict().values())

    @pytest.mark.parametrize("cls,flag,field", [
        (FaultStats, "any_faults", "transfer_errors"),
        (OverloadStats, "any_overload", "rejected"),
    ])
    def test_reset_clears_the_summary_flag(self, cls, flag, field):
        stats = cls()
        setattr(stats, field, 1)
        assert getattr(stats, flag)
        stats.reset()
        assert not getattr(stats, flag)


class TestWaterfillCacheReset:
    def _exercise(self, mem):
        def body():
            yield from mem.cpu_copy(65536, write=True)
            yield mem.dma_transfer(65536, write=True, channel_rate=8.0,
                                   tag=0)
        run_proc(mem.engine, body())

    def test_reset_stats_clears_counters_and_caches(self):
        engine = Engine()
        mem = hw_memory.SlowMemory(engine, CostModel(), dimms=6)
        self._exercise(mem)
        assert mem.bytes_written() > 0
        assert hw_memory._WATERFILL_CACHE
        mem.reset_stats()
        assert mem.bytes_read() == 0 and mem.bytes_written() == 0
        assert mem.write_pool.transfers_completed == 0
        assert not hw_memory._WATERFILL_CACHE
        assert not mem.write_pool._alloc_cache
        # Still usable: a second run repopulates from scratch.
        self._exercise(mem)
        assert mem.bytes_written() > 0

    def test_memo_cache_is_bounded_with_fifo_eviction(self):
        hw_memory.clear_waterfill_cache()
        cap = hw_memory._WATERFILL_CACHE_MAX
        try:
            for i in range(cap + 50):
                hw_memory._waterfill([1.0], [float(i + 1)], 1.0)
            assert len(hw_memory._WATERFILL_CACHE) == cap
            # Oldest entries were evicted, newest are resident.
            assert ((1.0,), (float(cap + 50),), 1.0) \
                in hw_memory._WATERFILL_CACHE
            assert ((1.0,), (1.0,), 1.0) not in hw_memory._WATERFILL_CACHE
        finally:
            hw_memory.clear_waterfill_cache()


def _settle(fs, result):
    if result.is_async:
        yield result.pending
    continuation = getattr(result, "continuation", None)
    if continuation is not None:
        yield from continuation(fs.context())


def _one_write(fs, ino, offset=0):
    def body():
        result = yield from fs.write(fs.context(), ino, offset, 16384,
                                     bytes(16384))
        yield from _settle(fs, result)
    run_proc(fs.engine, body())


class TestOpCounterReset:
    @pytest.mark.parametrize("kind", FS_KINDS)
    def test_reset_op_counters_zeroes_variant_counters(self, kind):
        platform = Platform(PlatformConfig.single_node())
        fs = make_fs(kind, platform)
        ino = run_proc(fs.engine, fs.create(fs.context(), "/r"))
        _one_write(fs, ino)
        assert fs.ops_completed > 0
        if kind in ("nova-dma", "easyio", "naive"):
            # These variants carry per-backend counters; the memcpy and
            # delegation paths (nova, odinfs) count only ops_completed.
            touched = [name for name in fs.OP_COUNTER_NAMES
                       if getattr(fs, name, 0)]
            assert touched, f"{kind}: the write bumped no op counter"
        fs.reset_op_counters()
        assert fs.ops_completed == 0
        for name in fs.OP_COUNTER_NAMES:
            assert getattr(fs, name, 0) == 0

    def test_back_to_back_runs_count_identically(self):
        """An easyio filesystem reused for a second measurement run must
        report the same counters as the first (no carry-over)."""
        platform = Platform(PlatformConfig.single_node())
        fs = make_fs("easyio", platform)
        ino = run_proc(fs.engine, fs.create(fs.context(), "/rr"))
        fs.reset_op_counters()  # don't count the setup create

        def run_once():
            for i in range(3):
                _one_write(fs, ino, offset=i * 16384)
            return (fs.ops_completed,
                    tuple(getattr(fs, n, 0) for n in fs.OP_COUNTER_NAMES))

        first = run_once()
        fs.reset_op_counters()
        fs.engine.reset_stats()
        second = run_once()
        assert second == first


class TestCoverageMapReset:
    """The fuzzer's coverage collector is the one stateful object a
    campaign carries; a leaked map would let run A's coverage mask
    run B's novelty and silently starve its corpus scheduler."""

    def _observe_some(self, m):
        from repro.fuzz import run_scenario, seed_corpus
        m.observe(run_scenario(seed_corpus()[0]).coverage)

    def test_reset_restores_construction_state(self):
        from repro.fuzz import CoverageMap
        m = CoverageMap()
        self._observe_some(m)
        assert len(m) > 0 and m.observed_runs == 1
        m.reset()
        assert len(m) == 0
        assert m.observed_runs == 0
        assert m.as_dict() == {}
        assert m.signature() == CoverageMap().signature()

    def test_back_to_back_campaign_use_counts_identically(self):
        """The cross-contamination regression: after a reset, the same
        run must be fully novel again (not masked by the previous
        campaign's keys)."""
        from repro.fuzz import CoverageMap, run_scenario, seed_corpus
        keys = run_scenario(seed_corpus()[0]).coverage
        m = CoverageMap()
        first_novel = m.observe(keys)
        assert m.observe(keys) == 0  # fully masked within one campaign
        m.reset()
        assert m.observe(keys) == first_novel
