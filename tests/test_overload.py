"""Overload robustness: admission control, deadlines, and the watchdog."""

import pytest

from repro.core import EasyIoFS
from repro.crash.crashmonkey import make_fs_on_image, snapshot_with_content
from repro.faults import ChannelHaltFault, FaultPlan
from repro.fs import DeadlineExceeded, PMImage
from repro.fs.recovery import completion_buffer_validator, recover
from repro.hw.platform import Platform, PlatformConfig
from repro.runtime import (
    AdmissionController,
    OverloadRejected,
    Runtime,
    Syscall,
    Watchdog,
)
from repro.workloads.overload import OverloadConfig, run_overload
from tests.conftest import run_proc


class TestAdmissionController:
    def test_bad_policy_rejected(self, engine):
        with pytest.raises(ValueError):
            AdmissionController(engine, policy="panic")
        with pytest.raises(ValueError):
            AdmissionController(engine, rate_ops_per_sec=0)
        with pytest.raises(ValueError):
            AdmissionController(engine, burst=0)

    def test_token_bucket_refills_with_sim_time(self, engine):
        # 1 token per microsecond, burst of 2.
        ac = AdmissionController(engine, rate_ops_per_sec=1e6, burst=2)
        assert ac.admit() == "admit"
        assert ac.admit() == "admit"
        assert ac.admit() == "reject"
        engine.run(until=1000)  # one microsecond later: one token back
        assert ac.admit() == "admit"
        assert ac.admit() == "reject"
        assert ac.stats.admitted == 3 and ac.stats.rejected == 2

    def test_bucket_never_exceeds_burst(self, engine):
        ac = AdmissionController(engine, rate_ops_per_sec=1e9, burst=4)
        engine.run(until=1_000_000)
        assert ac.tokens == 4.0

    def test_inflight_cap_and_release(self, engine):
        ac = AdmissionController(engine, max_inflight=1)
        assert ac.admit() == "admit"
        assert ac.admit() == "reject"
        ac.release()
        assert ac.admit() == "admit"
        ac.release()
        with pytest.raises(RuntimeError):
            ac.release()

    def test_queue_depth_gate(self, engine):
        depth = [0]
        ac = AdmissionController(engine, max_queue_depth=4,
                                 depth_fn=lambda: depth[0])
        assert ac.admit() == "admit"
        depth[0] = 4
        assert ac.admit() == "reject"
        depth[0] = 3
        assert ac.admit() == "admit"

    def test_degrade_policy_admits_synchronously(self, engine):
        ac = AdmissionController(engine, max_inflight=0, policy="degrade")
        assert ac.admit() == "degrade"
        assert ac.stats.admitted == 1 and ac.stats.rejected == 0

    def test_shed_spares_high_priority(self, engine):
        ac = AdmissionController(engine, max_inflight=0, policy="shed",
                                 shed_priority=0)
        assert ac.admit(priority=0) == "reject"
        assert ac.admit(priority=1) == "admit"
        assert ac.stats.shed == 1 and ac.stats.admitted == 1

    def test_rejected_syscall_raises_in_uthread(self, node):
        fs = EasyIoFS(node).mount()
        ac = AdmissionController(node.engine, max_inflight=0)
        rt = Runtime(node, cores=node.cores[:1], admission=ac)
        outcome = []
        def body():
            try:
                yield Syscall(lambda ctx: fs.create(ctx, "/f"))
            except OverloadRejected:
                outcome.append("rejected")
                return
            outcome.append("ok")
        rt.spawn(body())
        node.run()
        assert outcome == ["rejected"]
        assert rt.overload_stats.rejected == 1
        assert rt.active_uthreads == 0  # the scheduler survived the throw


class TestDeadlines:
    def _fs_rt(self, node):
        fs = EasyIoFS(node).mount()
        rt = Runtime(node, cores=node.cores[:1])
        return fs, rt

    def test_generous_deadline_is_invisible(self, node):
        fs, rt = self._fs_rt(node)
        outcome = []
        def body():
            ino = yield Syscall(lambda ctx: fs.create(ctx, "/f"))
            yield Syscall(lambda ctx: fs.write(ctx, ino, 0, 65536))
            outcome.append("ok")
        rt.spawn(body(), deadline=node.now + 1_000_000_000)
        node.run()
        assert outcome == ["ok"]
        assert rt.overload_stats.deadline_misses == 0

    def test_expired_deadline_raises_cleanly(self, node):
        fs, rt = self._fs_rt(node)
        ino = run_proc(node.engine, fs.create(fs.context(), "/f"))
        outcome = []
        def body():
            try:
                yield Syscall(lambda ctx: fs.write(ctx, ino, 0, 65536))
            except DeadlineExceeded:
                outcome.append("miss")
                return
            outcome.append("ok")
        rt.spawn(body(), deadline=node.now)  # already expired
        node.run()
        assert outcome == ["miss"]
        assert rt.overload_stats.deadline_misses == 1
        # The file lock must not be leaked by the aborted op.
        m = fs._mem[ino]
        assert not m.lock.held_exclusive and m.lock.reader_count == 0

    def test_thin_budget_degrades_to_sync(self, node):
        fs, rt = self._fs_rt(node)
        ino = run_proc(node.engine, fs.create(fs.context(), "/f"))
        outcome = []
        def body():
            r = yield Syscall(lambda ctx: fs.write(ctx, ino, 0, 262144))
            outcome.append(r.value)
        # Enough budget to finish a memcpy write, too thin to make
        # offloading worthwhile (below DEADLINE_MIN_ASYNC_NS).
        rt.spawn(body(), deadline=node.now + fs.DEADLINE_MIN_ASYNC_NS - 1)
        node.run()
        assert outcome == [262144] or rt.overload_stats.deadline_misses
        assert fs.overload_stats.degraded_to_sync >= 1


class TestWatchdog:
    class _Hang:
        """Syscall result whose completion never fires."""
        is_async = True
        continuation = None
        def __init__(self, event):
            self.pending = event

    def _hang_op(self, event):
        def op(ctx):
            return TestWatchdog._Hang(event)
            yield  # pragma: no cover - makes ``op`` a generator
        return op

    def test_hung_uthread_trips_and_engine_drains(self, node):
        rt = Runtime(node, cores=node.cores[:1])
        wd = Watchdog(rt, grace_factor=3)
        def body():
            yield Syscall(self._hang_op(node.engine.event()))
        ut = rt.spawn(body(), name="stuck", deadline=node.now + 5_000)
        node.run()  # must return: a hang may not become an infinite loop
        assert rt.overload_stats.watchdog_trips == 1
        assert ut.watchdog_flagged
        report = wd.reports[0]
        assert report.uthread == "stuck"
        assert report.time >= 15_000  # grace_factor x the 5 us budget
        assert "stuck" in report.render()
        assert any(u["io_parked"] for u in report.uthreads)
        # After flagging, the watchdog holds no timers: time stops.
        assert node.now <= 200_000

    def test_default_budget_covers_deadline_less_uthreads(self, node):
        rt = Runtime(node, cores=node.cores[:1])
        wd = Watchdog(rt, default_budget_ns=2_000, grace_factor=2)
        def body():
            yield Syscall(self._hang_op(node.engine.event()))
        rt.spawn(body(), name="nodl")  # no deadline
        node.run()
        assert rt.overload_stats.watchdog_trips == 1
        assert wd.reports[0].budget_ns == 2_000

    def test_unbudgeted_uthreads_are_not_watched(self, node):
        rt = Runtime(node, cores=node.cores[:1])
        Watchdog(rt)  # no default budget
        def body():
            yield Syscall(self._hang_op(node.engine.event()))
        rt.spawn(body())  # no deadline either: nothing to judge against
        node.run()
        assert rt.overload_stats.watchdog_trips == 0

    def test_healthy_deadlined_uthreads_never_trip(self, node):
        fs = EasyIoFS(node).mount()
        rt = Runtime(node, cores=node.cores[:2])
        wd = Watchdog(rt)
        def body(i):
            ino = yield Syscall(lambda ctx, i=i: fs.create(ctx, f"/f{i}"))
            yield Syscall(lambda ctx, ino=ino: fs.write(ctx, ino, 0, 65536))
        for i in range(4):
            rt.spawn(body(i), deadline=node.now + 50_000_000)
        node.run()
        assert rt.active_uthreads == 0
        assert rt.overload_stats.watchdog_trips == 0
        assert not wd.reports


class TestDeadlineUnderFaults:
    """A channel halt inside a deadlined write must end exactly one way:
    the op completes (failover / degradation made it) or it raises a
    clean ``DeadlineExceeded`` -- it must never hang the runtime."""

    # 2 us expires pre-submit (clean miss); 30 us and 10 ms both ride
    # the halt out via SN-safe failover (success) -- the two legal ends.
    @pytest.mark.parametrize("deadline_us", [2, 30, 10_000])
    def test_halt_during_deadlined_write(self, deadline_us):
        platform = Platform(PlatformConfig.single_node())
        fs = EasyIoFS(platform, PMImage()).mount()
        FaultPlan(seed=3, schedule=(
            ChannelHaltFault(channel_id=0, at_sn=1),
            ChannelHaltFault(channel_id=1, at_sn=1),
        )).install(platform, image=fs.image)
        rt = Runtime(platform, cores=platform.cores[:1])
        Watchdog(rt, grace_factor=10)
        payload = b"\xab" * (256 * 1024)
        outcome = []
        created = []
        def body():
            ino = yield Syscall(lambda ctx: fs.create(ctx, "/f"))
            created.append(ino)
            try:
                yield Syscall(lambda ctx: fs.write(ctx, ino, 0,
                                                   len(payload), payload))
            except DeadlineExceeded:
                outcome.append("miss")
                return
            outcome.append("ok")
        rt.spawn(body(), deadline=platform.engine.now + deadline_us * 1000)
        platform.engine.run()
        assert rt.active_uthreads == 0, "deadlined write hung the runtime"
        assert outcome in (["ok"], ["miss"])
        if outcome == ["ok"]:
            # Success must mean the bytes really landed (degraded memcpy
            # or SN-safe failover -- either way, full payload).
            m = fs._mem[created[0]]
            assert fs._collect_data(m, 0, m.size) == payload

    def test_crash_legality_of_deadline_aborted_write(self):
        """A write aborted by ``DeadlineExceeded`` publishes no partial
        mutations, so every crash point of the log recovers legally."""
        platform = Platform(PlatformConfig.single_node())
        fs = EasyIoFS(platform, PMImage(record=True)).mount()
        image = fs.image
        engine = platform.engine
        a = b"\x11" * (128 * 1024)
        state = {}

        def main():
            ino = yield from fs.create(fs.context(), "/f")
            state["ino"] = ino
            r = yield from fs.write(fs.context(), ino, 0, len(a), a)
            if r.is_async:
                yield r.pending
            state["committed_log"] = len(image.mutations)
            ctx = fs.context(deadline=engine.now)  # already expired
            with pytest.raises(DeadlineExceeded):
                yield from fs.write(ctx, ino, 0, len(a), b"\x22" * len(a))
        run_proc(engine, main())
        # The aborted op added nothing to the persist log.
        assert len(image.mutations) == state["committed_log"]

        # Every crash point (sampled) recovers to a legal state, and a
        # full replay recovers the committed content.
        total = image.crash_points()
        final = None
        for k in range(0, total + 1, max(1, total // 16)):
            img = image.replay(k)
            p2 = Platform(PlatformConfig.single_node())
            fs2 = make_fs_on_image("easyio", p2, img)
            recover(fs2, completion_buffer_validator(img))
            final = snapshot_with_content(fs2) if k == total else final
        img = image.replay(total)
        p2 = Platform(PlatformConfig.single_node())
        fs2 = make_fs_on_image("easyio", p2, img)
        recover(fs2, completion_buffer_validator(img))
        snap = snapshot_with_content(fs2)
        assert snap.get("/f", (None, 0, None))[1] == len(a)
        m2 = fs2._mem[state["ino"]]
        assert fs2._collect_data(m2, 0, m2.size) == a


class TestOverloadWorkload:
    def test_small_run_is_deterministic(self):
        cfg = dict(arrival_rate_ops_per_sec=400_000, duration_us=400,
                   deadline_us=200, admission_policy="reject",
                   max_queue_depth=8, seed=7)
        r1 = run_overload(OverloadConfig(**cfg))
        r2 = run_overload(OverloadConfig(**cfg))
        assert r1.offered == r2.offered
        assert (r1.completed, r1.rejected, r1.deadline_missed) == \
               (r2.completed, r2.rejected, r2.deadline_missed)
        assert r1.p99_us == r2.p99_us

    def test_outcomes_account_for_every_arrival(self):
        r = run_overload(OverloadConfig(
            arrival_rate_ops_per_sec=500_000, duration_us=400,
            deadline_us=150, admission_policy="shed", max_queue_depth=8,
            priority_fraction=0.3, seed=11, watchdog=True))
        assert (r.completed + r.rejected + r.deadline_missed + r.failed
                == r.offered)
        assert r.stats.shed == r.rejected
        assert not r.hang_reports
