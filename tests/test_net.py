"""Unit tests for the simulated network and cluster replication."""

import pytest

from repro.fs.nova import DeadlineExceeded
from repro.net import (
    BACKUP,
    Cluster,
    ClusterConfig,
    HEADER_BYTES,
    NetFaultPlan,
    Network,
    NodeCrashFault,
    PRIMARY,
    PartitionFault,
)
from repro.sim import Engine, WaitTimeout


def _collect(engine, ep, until):
    got = []

    def rx():
        while True:
            try:
                item = yield ep.inbox.get(timeout=until)
            except WaitTimeout:
                return
            got.append((engine.now, item))
    engine.process(rx(), name="rx")
    return got


class TestNetwork:
    def test_latency_and_serialization(self):
        eng = Engine()
        net = Network(eng, latency_ns=1_000, bytes_per_ns=1.0)
        a, b = net.register("a"), net.register("b")
        got = _collect(eng, b, 100_000)
        a.send("b", "hello", nbytes=500)
        eng.run(until=200_000)
        assert len(got) == 1
        t, (src, msg) = got[0]
        assert (src, msg) == ("a", "hello")
        assert t == 1_000 + 500 + HEADER_BYTES

    def test_per_link_override(self):
        eng = Engine()
        net = Network(eng, latency_ns=1_000, bytes_per_ns=10.0)
        net.register("a"), net.register("b")
        net.set_link("a", "b", latency_ns=50_000)
        assert net.link_params("a", "b")[0] == 50_000
        assert net.link_params("b", "a")[0] == 50_000  # symmetric

    def test_partition_drops_both_at_send_and_in_flight(self):
        eng = Engine()
        net = Network(eng, latency_ns=10_000)
        a, b = net.register("a"), net.register("b")
        got = _collect(eng, b, 200_000)
        # In-flight at cut time: sent now, cut before delivery.
        a.send("b", "doomed")
        eng.run(until=5_000)
        net.cut("a", "b")
        a.send("b", "also-doomed")
        eng.run(until=50_000)
        net.heal("a", "b")
        a.send("b", "arrives")
        eng.run(until=400_000)
        assert [m for _, (_, m) in got] == ["arrives"]
        assert net.stats.dropped_partition == 2

    def test_down_endpoint_drops_silently(self):
        eng = Engine()
        net = Network(eng)
        a, b = net.register("a"), net.register("b")
        b.up = False
        a.send("b", "x")
        eng.run(until=100_000)
        assert net.stats.dropped_down == 1
        assert len(b.inbox) == 0

    def test_unknown_destination_raises(self):
        eng = Engine()
        net = Network(eng)
        a = net.register("a")
        with pytest.raises(ValueError, match="unknown destination"):
            a.send("ghost", "x")

    def test_duplicate_registration_rejected(self):
        eng = Engine()
        net = Network(eng)
        net.register("a")
        with pytest.raises(ValueError, match="already registered"):
            net.register("a")


class TestNetFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="p_drop"):
            NetFaultPlan(p_drop=1.5)
        with pytest.raises(ValueError, match="delay_ns"):
            NetFaultPlan(delay_ns=0)
        with pytest.raises(ValueError, match="start_ns"):
            PartitionFault(start_ns=-1, duration_ns=5, group=("a",))
        with pytest.raises(ValueError, match="at least one node"):
            PartitionFault(start_ns=0, duration_ns=5, group=())
        with pytest.raises(ValueError, match="down_ns"):
            NodeCrashFault("a", at_ns=0, down_ns=-3)
        with pytest.raises(ValueError, match="overlapping partition"):
            NetFaultPlan(schedule=(
                PartitionFault(0, 100, ("a",)),
                PartitionFault(50, 100, ("a",))))
        with pytest.raises(ValueError, match="overlapping crash"):
            NetFaultPlan(schedule=(
                NodeCrashFault("a", at_ns=0, down_ns=100),
                NodeCrashFault("a", at_ns=50, down_ns=10)))
        # Disjoint windows and different resources are fine.
        NetFaultPlan(schedule=(
            PartitionFault(0, 100, ("a",)),
            PartitionFault(100, 100, ("a",)),
            PartitionFault(50, 10, ("b",)),
            NodeCrashFault("a", at_ns=0, down_ns=100),
            NodeCrashFault("b", at_ns=50, down_ns=10)))

    def test_message_fates_deterministic_and_budgeted(self):
        def fates(seed, n, budget=1000):
            plan = NetFaultPlan(seed=seed, p_drop=0.2, p_dup=0.1,
                                p_delay=0.1, max_faults=budget)
            return [plan.message_fate("a", "b") for _ in range(n)]
        assert fates(5, 200) == fates(5, 200)
        assert fates(5, 200) != fates(6, 200)
        # Budget spent -> perfect network from then on.
        exhausted = fates(5, 200, budget=3)
        assert all(f == (0,) for f in exhausted[-100:])

    def test_crash_schedule_requires_cluster(self):
        eng = Engine()
        net = Network(eng)
        plan = NetFaultPlan(schedule=(NodeCrashFault("a", at_ns=10),))
        with pytest.raises(ValueError, match="no cluster"):
            plan.install(net)

    def test_partition_window_cuts_and_heals(self):
        eng = Engine()
        net = Network(eng)
        net.register("a"), net.register("b"), net.register("c")
        plan = NetFaultPlan(schedule=(
            PartitionFault(start_ns=1_000, duration_ns=2_000, group=("a",)),))
        plan.install(net)
        eng.run(until=1_500)
        assert net.is_cut("a", "b") and net.is_cut("a", "c")
        assert not net.is_cut("b", "c")
        eng.run(until=5_000)
        assert not net.is_cut("a", "b")
        kinds = [k for _, k, *_ in plan.trace]
        assert kinds == ["partition", "heal"]


class TestCluster:
    def test_quorum_defaults_to_majority(self):
        eng = Engine()
        assert Cluster(eng, n=3).quorum == 2
        assert Cluster(Engine(), n=5).quorum == 3
        with pytest.raises(ValueError, match="quorum"):
            Cluster(Engine(), n=3, quorum=4)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="renew_every_ns"):
            ClusterConfig(lease_ns=100, renew_every_ns=100)
        with pytest.raises(ValueError, match="tick_ns"):
            ClusterConfig(tick_ns=-1)

    def test_elects_one_primary_and_commits_writes(self):
        eng = Engine()
        c = Cluster(eng, n=3)
        ep = c.client("w")
        sns = []

        def client():
            for _ in range(5):
                sn = yield from c.client_write(ep, 1024)
                sns.append(sn)
        eng.process(client(), name="client")
        eng.run(until=20_000_000)
        assert len(sns) == 5
        assert sns == sorted(sns)
        assert len(c.lease_log) == 1          # no spurious failovers
        roles = [n.role for n in c.nodes.values()]
        assert roles.count(PRIMARY) == 1
        # All replicas converge to identical logs.
        logs = [[(r.sn, r.epoch) for r in n.log] for n in c.nodes.values()]
        assert logs[0] == logs[1] == logs[2]

    def test_ack_only_after_quorum(self):
        # Quorum = 3 of 3: partition one backup away and the primary
        # must stop acking entirely.
        eng = Engine()
        c = Cluster(eng, n=3, quorum=3)
        plan = NetFaultPlan(schedule=(
            PartitionFault(start_ns=3_000_000, duration_ns=30_000_000,
                           group=(2,)),))
        plan.install(c.network, cluster=c)
        ep = c.client("w")
        acked = []

        def client():
            while True:
                sn = yield from c.client_write(ep, 512)
                acked.append((eng.now, sn))
                yield eng.timeout(200_000)
        eng.process(client(), name="client")
        eng.run(until=20_000_000)
        assert acked, "writes before the partition must be acked"
        assert all(t < 3_000_000 + 1_000_000 for t, _ in acked), \
            "no write may be acked while a quorum-3 member is cut off"

    def test_primary_crash_fails_over_and_old_primary_rejoins(self):
        eng = Engine()
        c = Cluster(eng, n=3)
        plan = NetFaultPlan(schedule=(
            NodeCrashFault(0, at_ns=2_000_000, down_ns=10_000_000),))
        plan.install(c.network, cluster=c)
        ep = c.client("w")
        acked = []

        def client():
            for _ in range(20):
                sn = yield from c.client_write(ep, 512)
                acked.append(sn)
                yield eng.timeout(400_000)
        eng.process(client(), name="client")
        eng.run(until=60_000_000)
        assert len(acked) == 20
        epochs = [e for _, e, _, _ in c.lease_log]
        assert epochs == [1, 2]
        assert c.lease_log[0][2] == 0         # node 0 bootstraps
        assert c.lease_log[1][2] != 0         # someone else takes over
        assert c.nodes[0].role == BACKUP      # rejoined as backup
        logs = [[(r.sn, r.epoch) for r in n.log] for n in c.nodes.values()]
        assert logs[0] == logs[1] == logs[2]

    def test_deadline_during_partition_fails_clean_never_acks(self):
        # The deadline x partition satellite: a deadlined write issued
        # while the primary is unreachable must raise DeadlineExceeded
        # (not hang), and must never be acked later as a ghost.
        eng = Engine()
        c = Cluster(eng, n=3)
        plan = NetFaultPlan(schedule=(
            PartitionFault(start_ns=1_000_000, duration_ns=8_000_000,
                           group=(0, "client:w")),))
        plan.install(c.network, cluster=c)
        ep = c.client("w")
        outcome = {}

        def client():
            sn = yield from c.client_write(ep, 512)       # pre-partition
            outcome["pre"] = sn
            yield eng.timeout(1_500_000)                  # inside window
            try:
                yield from c.client_write(
                    ep, 512, deadline_ns=eng.now + 2_000_000)
                outcome["during"] = "acked"
            except DeadlineExceeded:
                outcome["during"] = "deadline"
            outcome["t_fail"] = eng.now
        eng.process(client(), name="client")
        eng.run(until=40_000_000)
        assert outcome["pre"] >= 1
        assert outcome["during"] == "deadline"
        # Failed at (not after) the deadline: bounded, no hang.
        assert outcome["t_fail"] <= 2_500_000 + 2_000_000 + 1
        # The co-partitioned primary never acked the doomed write and
        # its unreplicated suffix was amended away on rejoin.
        logs = [[(r.sn, r.epoch) for r in n.log] for n in c.nodes.values()]
        assert logs[0] == logs[1] == logs[2]

    def test_write_op_adapter_runs_under_runtime(self):
        from repro.runtime import Runtime, Syscall
        from repro.workloads.factory import make_platform
        platform = make_platform(single_node=True)
        eng = platform.engine
        c = Cluster(eng, n=3)
        runtime = Runtime(platform, cores=platform.cores[:1])
        ep = c.client("w")
        got = {}

        def body():
            got["sn"] = yield Syscall(c.write_op(ep, 4096))
        runtime.spawn(body(), name="writer")
        eng.run(until=20_000_000)
        assert got["sn"] >= 1
