"""Tests for the fault-injection layer (repro.faults) and EasyIO's
fault-tolerance paths: retry, channel failover, quarantine/readmit,
graceful degradation, media-fault detection, and crash consistency
under faults."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.easyio import EasyIoFS
from repro.crash.crashmonkey import run_crash_test
from repro.faults import (BandwidthFault, ChannelHaltFault, FaultPlan,
                          MediaFault, TransferErrorFault)
from repro.fs.pmimage import PMImage
from repro.fs.recovery import completion_buffer_validator
from repro.fs.structures import WriteEntry
from repro.hw.dma import DmaDescriptor
from repro.hw.platform import Platform, PlatformConfig
from tests.conftest import run_proc


def _payload(tag: int, nbytes: int) -> bytes:
    return (f"{tag:08x}".encode() * ((nbytes // 8) + 1))[:nbytes]


def _faulty_fs(plan_kwargs, **fs_kwargs):
    platform = Platform(PlatformConfig.single_node())
    image = PMImage(record=True)
    fs = EasyIoFS(platform, image, **fs_kwargs)
    fs.mount()
    plan = FaultPlan(**plan_kwargs)
    plan.install(platform, image=image)
    return platform, fs, plan


def _write_n(fs, nops=12, nbytes=256 * 1024):
    """Workload driver: create one file, write ``nops`` extents, wait
    each out, then read back and compare against what was written."""
    ino = yield from fs.create(fs.context(record=False), "/f")
    for i in range(nops):
        r = yield from fs.write(fs.context(record=False), ino,
                                i * nbytes, nbytes, _payload(i, nbytes))
        assert r.value == nbytes
        if r.is_async:
            yield r.pending
    m = fs._mem[ino]
    data = fs._collect_data(m, 0, m.size)
    assert data == b"".join(_payload(i, nbytes) for i in range(nops)), \
        "read-back differs from written bytes"
    return ino


class TestFaultPlan:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(p_xfer_error=1.5)
        with pytest.raises(ValueError):
            FaultPlan(p_chan_halt=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(max_faults=-1)

    def test_unknown_schedule_entry_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan(schedule=("boom",))

    def test_schedule_entry_validation(self):
        # The shared validators (also used by net.NetFaultPlan) reject
        # malformed windows and conflicting per-resource schedules.
        with pytest.raises(ValueError, match="channel_id"):
            FaultPlan(schedule=(TransferErrorFault(-1, 1),))
        with pytest.raises(ValueError, match="at_sn"):
            FaultPlan(schedule=(ChannelHaltFault(0, at_sn=0),))
        with pytest.raises(ValueError, match="conflicting scheduled"):
            FaultPlan(schedule=(TransferErrorFault(0, 3),
                                ChannelHaltFault(0, at_sn=3)))
        with pytest.raises(ValueError, match="at_write"):
            FaultPlan(schedule=(MediaFault(at_write=0),))
        with pytest.raises(ValueError, match="start_ns"):
            FaultPlan(schedule=(BandwidthFault(-5, 100, 0.5),))
        with pytest.raises(ValueError, match="factor"):
            FaultPlan(schedule=(BandwidthFault(0, 100, 1.5),))
        with pytest.raises(ValueError, match="overlapping bandwidth"):
            FaultPlan(schedule=(BandwidthFault(0, 200, 0.5),
                                BandwidthFault(100, 200, 0.25)))
        # Back-to-back windows and distinct channels are legal.
        FaultPlan(schedule=(BandwidthFault(0, 100, 0.5),
                            BandwidthFault(100, 100, 0.25),
                            TransferErrorFault(0, 3),
                            ChannelHaltFault(1, at_sn=3)))

    def test_scheduled_faults_ignore_budget(self, node):
        plan = FaultPlan(schedule=(TransferErrorFault(0, 1),), max_faults=0)
        plan.install(node)
        def body():
            d = DmaDescriptor(65536, write=True)
            yield from node.dma.channel(0).submit([d])
            yield d.done
            return d.status
        assert run_proc(node.engine, body()) == "error"
        assert plan.injected["xfer_error"] == 1

    def test_budget_caps_probabilistic_faults(self, node):
        plan = FaultPlan(seed=1, p_xfer_error=1.0, max_faults=2)
        plan.install(node)
        def body():
            ch = node.dma.channel(0)
            statuses = []
            for _ in range(6):
                d = DmaDescriptor(65536, write=True)
                yield from ch.submit([d])
                yield d.done
                statuses.append(d.status)
            return statuses
        statuses = run_proc(node.engine, body())
        assert statuses.count("error") == 2
        assert statuses[2:] == ["ok"] * 4, "budget exhausted => perfect hw"


class TestDmaFaultSemantics:
    def test_transfer_error_skips_completion(self, node):
        """A failed SN is never covered by its own service; a later
        success jumps the buffer past it, and the SN is poisoned."""
        plan = FaultPlan(schedule=(TransferErrorFault(0, 1),))
        plan.install(node)
        ch = node.dma.channel(0)
        def body():
            d1 = DmaDescriptor(65536, write=True)
            d2 = DmaDescriptor(65536, write=True)
            yield from ch.submit([d1, d2])
            yield d1.done
            assert d1.status == "error" and ch.completion_sn == 0
            yield d2.done
        run_proc(node.engine, body())
        assert ch.completion_sn == 2, "completion jumps past the failed SN"
        assert ch.error_sns == {1}
        assert not ch.halted

    def test_halt_strands_ring_until_reset(self, node):
        plan = FaultPlan(schedule=(ChannelHaltFault(0, 1),))
        plan.install(node)
        ch = node.dma.channel(0)
        ch.on_halt = None   # take over CHANERR handling in the test
        reported = []
        ch.on_error = ch.on_reset = lambda c, sns: reported.extend(sns)
        def body():
            descs = [DmaDescriptor(65536, write=True) for _ in range(3)]
            yield from ch.submit(descs)
            yield descs[0].done
            assert ch.halted and ch.error_sn == 1 and ch.chanerr == "chan_halt"
            yield node.engine.timeout(500_000)
            assert not descs[1].done.triggered, "halted channel kept serving"
            stranded = ch.reset()
            assert [d.sn for d in stranded] == [2, 3]
            assert all(d.status == "stranded" for d in stranded)
            return descs
        run_proc(node.engine, body())
        assert not ch.halted and ch.resets == 1
        assert sorted(reported) == [1, 2, 3], \
            "every failed/stranded SN must be reported for poisoning"
        assert ch.queue_depth == 0

    def test_halted_channel_serves_again_after_reset(self, node):
        plan = FaultPlan(schedule=(ChannelHaltFault(0, 1),))
        plan.install(node)
        ch = node.dma.channel(0)
        ch.on_halt = None
        def body():
            d1 = DmaDescriptor(65536, write=True)
            yield from ch.submit([d1])
            yield d1.done
            ch.reset()
            d2 = DmaDescriptor(65536, write=True)
            yield from ch.submit([d2])
            yield d2.done
            return d2.status
        assert run_proc(node.engine, body()) == "ok"
        assert ch.completion_sn == 2

    def test_bandwidth_degradation_window(self, node):
        """Inside the window transfers run slower; afterwards the base
        capacities are restored."""
        def timed(plan):
            plat = Platform(PlatformConfig.single_node())
            if plan is not None:
                plan.install(plat)
            ch = plat.dma.channel(0)
            def body():
                d = DmaDescriptor(1 << 20, write=True)
                yield from ch.submit([d])
                yield d.done
            t0 = plat.engine.now
            run_proc(plat.engine, body())
            return plat.engine.now - t0, plat.memory
        base, _ = timed(None)
        slowed, memory = timed(FaultPlan(schedule=(
            BandwidthFault(start_ns=0, duration_ns=10**9, factor=0.25),)))
        assert slowed > base * 2
        assert memory.degradation == (1.0, 1.0), \
            "base capacities restored once the window closes"
        restored, memory = timed(FaultPlan(schedule=(
            BandwidthFault(start_ns=0, duration_ns=1, factor=0.25),)))
        assert restored == pytest.approx(base, rel=0.05), \
            "a transfer after the window runs at full speed"

    def test_set_degradation_validates_and_scales(self, node):
        node.memory.set_degradation(0.5, 0.25)
        assert node.memory.degradation == (0.5, 0.25)
        node.memory.set_degradation(1.0, 1.0)
        assert node.memory.degradation == (1.0, 1.0)
        with pytest.raises(ValueError):
            node.memory.set_degradation(0.0, 1.0)
        with pytest.raises(ValueError):
            node.memory.set_degradation(1.0, 1.5)


class TestEasyIoRetry:
    def test_soft_error_retried_on_same_channel(self):
        platform, fs, plan = _faulty_fs(
            dict(seed=7, schedule=(TransferErrorFault(0, 2),)))
        run_proc(platform.engine, _write_n(fs))
        stats = fs.fault_stats
        assert stats.transfer_errors == 1
        assert stats.retries == 1
        assert stats.failovers == 0, "a soft error retries in place"
        assert stats.degraded_writes == 0

    def test_halt_fails_over_and_amends_log(self):
        platform, fs, plan = _faulty_fs(
            dict(seed=7, schedule=(ChannelHaltFault(0, 2),)))
        ino = run_proc(platform.engine, _write_n(fs))
        stats = fs.fault_stats
        assert stats.channel_halts == 1
        assert stats.failovers >= 1
        assert stats.channel_resets == 1
        assert stats.quarantines == 1
        assert stats.readmissions == 1, "probe readmits the reset channel"
        # The failed SN is poisoned in the persistent image, and the
        # owning entry's SNs were amended to the failover target.
        assert 2 in fs.image.channel_error_sns[0]
        for entry in fs.image.logs[ino]:
            if isinstance(entry, WriteEntry):
                for chid, sn in entry.sns:
                    assert sn not in fs.image.channel_error_sns.get(chid, ())

    def test_repeated_errors_quarantine_channel(self):
        platform, fs, plan = _faulty_fs(
            dict(seed=7, schedule=tuple(TransferErrorFault(0, sn)
                                        for sn in range(1, 9))))
        run_proc(platform.engine, _write_n(fs))
        stats = fs.fault_stats
        assert stats.quarantines >= 1
        assert stats.readmissions >= 1
        assert not any(h.quarantined for h in fs.cm._health.values()), \
            "probes must readmit once faults stop"

    def test_all_channels_halted_degrades_to_memcpy(self):
        """Kill every channel's first descriptor forever: EasyIO must
        still complete all I/O with correct contents via memcpy."""
        platform, fs, plan = _faulty_fs(
            dict(seed=3, p_chan_halt=1.0, max_faults=10**9),
            fault_tolerant=True)
        nops, nbytes = 6, 256 * 1024
        def body():
            yield from _write_n(fs, nops=nops, nbytes=nbytes)
            fs.cm.stop()   # halted channels never readmit; let it drain
        run_proc(platform.engine, body())
        stats = fs.fault_stats
        assert stats.degraded_writes >= 1
        assert stats.degraded_bytes > 0

    def test_media_faults_detected_and_rewritten(self):
        platform, fs, plan = _faulty_fs(
            dict(seed=5, schedule=(MediaFault(at_write=3),
                                   MediaFault(at_write=7))))
        run_proc(platform.engine, _write_n(fs))
        assert fs.fault_stats.media_faults_detected == 2
        assert plan.injected["media"] == 2

    def test_fault_free_run_keeps_counters_zero(self):
        platform, fs, plan = _faulty_fs(dict(seed=9))
        run_proc(platform.engine, _write_n(fs))
        assert not fs.fault_stats.any_faults
        assert plan.trace == []


class TestRecoveryUnderFaults:
    def test_validator_rejects_poisoned_sn(self):
        """A poisoned SN is invalid even though the completion buffer
        jumped past it (the failover soundness rule)."""
        image = PMImage()
        image.update_completion_buffer(0, 10)
        image.record_channel_errors(0, (4,))
        validator = completion_buffer_validator(image)
        ok = WriteEntry(pgoff=0, page_ids=(1,), size_after=4096, mtime=0,
                        sns=((0, 5),))
        poisoned = WriteEntry(pgoff=0, page_ids=(2,), size_after=4096,
                              mtime=0, sns=((0, 4),))
        uncovered = WriteEntry(pgoff=0, page_ids=(3,), size_after=4096,
                               mtime=0, sns=((0, 11),))
        assert validator(ok.sns)
        assert not validator(poisoned.sns)
        assert not validator(uncovered.sns)

    def test_crash_points_in_retry_and_failover_windows(self):
        """CrashMonkey under injected faults: every crash point --
        including those inside retry/failover windows -- must recover
        to a legal state."""
        report = run_crash_test(
            "easyio", "create_delete", crash_points=120,
            fault_plan=lambda: FaultPlan(
                seed=42, p_xfer_error=0.02, p_media=0.02, max_faults=24,
                schedule=(ChannelHaltFault(0, 5), TransferErrorFault(1, 9))))
        assert report.all_passed, report.failures[:5]


class TestDeterminism:
    """Satellite: same seed => identical event trace and counters."""

    @staticmethod
    def _run(seed):
        platform, fs, plan = _faulty_fs(
            dict(seed=seed, p_xfer_error=0.05, p_chan_halt=0.01,
                 p_media=0.05, max_faults=16))
        run_proc(platform.engine, _write_n(fs))
        return plan.trace, fs.fault_stats.as_dict(), platform.engine.now

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_same_seed_same_trace_and_counters(self, seed):
        trace1, stats1, end1 = self._run(seed)
        trace2, stats2, end2 = self._run(seed)
        assert trace1 == trace2
        assert stats1 == stats2
        assert end1 == end2

    def test_different_seeds_diverge(self):
        """Not a hard guarantee for any pair, but these two must not
        collide (they differ in the very first descriptor draw)."""
        traces = {tuple(self._run(seed)[0]) for seed in range(6)}
        assert len(traces) > 1
