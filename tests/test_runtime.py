"""Tests for the Caladan-like uthread runtime."""

import pytest

from repro.fs import NovaFS, PMImage
from repro.core import EasyIoFS
from repro.runtime import Compute, Runtime, Sleep, Syscall, Yield


class TestBasics:
    def test_uthread_runs_and_returns(self, node):
        rt = Runtime(node, cores=node.cores[:1])
        def body():
            yield Compute(100)
            return "ok"
        ut = rt.spawn(body())
        node.run()
        assert ut.done.value == "ok"
        assert ut.finished
        assert rt.active_uthreads == 0

    def test_compute_burns_core_time(self, node):
        rt = Runtime(node, cores=node.cores[:1])
        def body():
            yield Compute(10_000)
        rt.spawn(body())
        node.run()
        assert node.cores[0].busy_ns() >= 10_000

    def test_sleep_releases_core(self, node):
        rt = Runtime(node, cores=node.cores[:1])
        order = []
        def sleeper():
            yield Sleep(5_000)
            order.append(("sleeper", node.now))
        def worker():
            yield Compute(1_000)
            order.append(("worker", node.now))
        rt.spawn(sleeper())
        rt.spawn(worker())
        node.run()
        # The worker runs while the sleeper is parked.
        assert order[0][0] == "worker"

    def test_yield_round_robins(self, node):
        rt = Runtime(node, cores=node.cores[:1])
        order = []
        def worker(name):
            for _ in range(3):
                order.append(name)
                yield Yield()
        rt.spawn(worker("a"), core=0)
        rt.spawn(worker("b"), core=0)
        node.run()
        assert order[:4] == ["a", "b", "a", "b"]

    def test_uthread_exception_propagates(self, node):
        rt = Runtime(node, cores=node.cores[:1])
        def bad():
            yield Compute(10)
            raise ValueError("app bug")
        rt.spawn(bad())
        with pytest.raises(ValueError, match="app bug"):
            node.run()

    def test_unknown_effect_rejected(self, node):
        rt = Runtime(node, cores=node.cores[:1])
        def bad():
            yield "what"
        rt.spawn(bad())
        with pytest.raises(TypeError):
            node.run()

    def test_drain_event(self, node):
        rt = Runtime(node, cores=node.cores[:1])
        def body():
            yield Compute(500)
        rt.spawn(body())
        fired = []
        rt.drain().add_callback(lambda _e: fired.append(node.now))
        node.run()
        assert len(fired) == 1

    def test_runtime_requires_cores(self, node):
        with pytest.raises(ValueError):
            Runtime(node, cores=[])


class TestSyscalls:
    def test_sync_syscall_resumes_same_uthread(self, node):
        fs = NovaFS(node, PMImage()).mount()
        rt = Runtime(node, cores=node.cores[:1])
        steps = []
        def body():
            ino = yield Syscall(lambda ctx: fs.create(ctx, "/f"))
            steps.append("created")
            result = yield Syscall(lambda ctx: fs.write(ctx, ino, 0, 4096))
            steps.append(result.value)
        rt.spawn(body())
        node.run()
        assert steps == ["created", 4096]

    def test_async_syscall_parks_until_completion(self, node):
        fs = EasyIoFS(node).mount()
        rt = Runtime(node, cores=node.cores[:1])
        out = {}
        def body():
            ino = yield Syscall(lambda ctx: fs.create(ctx, "/f"))
            result = yield Syscall(lambda ctx: fs.write(ctx, ino, 0, 65536))
            # By the time the uthread resumes, the DMA has finished.
            out["pending_done"] = result.pending.processed
            out["value"] = result.value
        ut = rt.spawn(body())
        node.run()
        assert out == {"pending_done": True, "value": 65536}
        assert ut.parks >= 1

    def test_core_interleaves_compute_during_async_io(self, node):
        """The whole point of EasyIO: another uthread's compute fills
        the core while a write's DMA is in flight."""
        fs = EasyIoFS(node).mount()
        rt = Runtime(node, cores=node.cores[:1])
        trace = []
        def io_worker():
            ino = yield Syscall(lambda ctx: fs.create(ctx, "/f"))
            for _ in range(3):
                yield Syscall(lambda ctx: fs.write(ctx, ino, 0, 65536))
                trace.append(("io", node.now))
        def compute_worker():
            for _ in range(20):
                yield Compute(2_000)
                trace.append(("cpu", node.now))
                yield Yield()
        rt.spawn(io_worker(), core=0)
        rt.spawn(compute_worker(), core=0)
        node.run()
        kinds = [k for k, _t in trace]
        first_io_done = kinds.index("io")
        assert "cpu" in kinds[:first_io_done], \
            "compute should interleave with the in-flight write"


class TestWorkStealing:
    def test_idle_core_steals_runnable_work(self, node):
        rt = Runtime(node, cores=node.cores[:2], steal=True)
        ran_on = []
        def worker(i):
            yield Compute(5_000)
            ran_on.append(i)
        # Pile every uthread onto core 0; core 1 must steal some.
        for i in range(6):
            rt.spawn(worker(i), core=0)
        node.run()
        assert len(ran_on) == 6
        assert rt.schedulers[1].steals > 0
        assert node.cores[1].busy_ns() > 0

    def test_stealing_disabled_keeps_work_local(self, node):
        rt = Runtime(node, cores=node.cores[:2], steal=False)
        def worker():
            yield Compute(5_000)
        for _ in range(6):
            rt.spawn(worker(), core=0)
        node.run()
        assert rt.schedulers[1].steals == 0
        assert node.cores[1].busy_ns() == 0

    def test_completed_io_preferred_over_fresh(self, node):
        fs = EasyIoFS(node).mount()
        rt = Runtime(node, cores=node.cores[:1], steal=False)
        order = []
        def io_worker():
            ino = yield Syscall(lambda ctx: fs.create(ctx, "/f"))
            yield Syscall(lambda ctx: fs.write(ctx, ino, 0, 65536))
            order.append("io-resumed")
        def fresh(i):
            for lap in range(3):
                yield Compute(3_000)
                order.append(f"fresh{i}.{lap}")
                yield Yield()
        rt.spawn(io_worker(), core=0)
        for i in range(4):
            rt.spawn(fresh(i), core=0)
        node.run()
        # The parked io uthread resumes before the fresh compute
        # uthreads have finished all their later slices.
        assert order.index("io-resumed") < len(order) - 1


class TestAccounting:
    def test_switch_counter(self, node):
        rt = Runtime(node, cores=node.cores[:1])
        def w():
            yield Yield()
            yield Yield()
        rt.spawn(w())
        rt.spawn(w())
        node.run()
        assert rt.total_switches() >= 4

    def test_core_idle_when_nothing_runnable(self, node):
        rt = Runtime(node, cores=node.cores[:1])
        def body():
            yield Sleep(50_000)   # long park; core should go idle
            yield Compute(100)
        rt.spawn(body())
        node.run()
        busy = node.cores[0].busy_ns()
        assert busy < 10_000, f"core busy {busy}ns during a pure sleep"


class TestIdleWakeup:
    def test_spawn_wakes_drained_scheduler(self, node):
        # Lost-wakeup regression for the scheduler's Gate.pulse() idle
        # loop: after the run queue drains and the scheduler parks on
        # its wake gate, a fresh spawn's pulse must still reach it.
        rt = Runtime(node, cores=node.cores[:1])
        def w(out):
            yield Compute(100)
            out.append(node.now)
        first, second = [], []
        rt.spawn(w(first))
        node.run()
        assert first, "first uthread never ran"
        rt.spawn(w(second))
        node.run()
        assert second, "lost wakeup: parked scheduler missed the pulse"

    def test_pulse_survives_many_drain_cycles(self, node):
        rt = Runtime(node, cores=node.cores[:2])
        done = []
        for cycle in range(5):
            def w(c=cycle):
                yield Compute(10)
                done.append(c)
            rt.spawn(w(), core=cycle % 2)
            node.run()
        assert done == [0, 1, 2, 3, 4]


class TestWatchdogRuntime:
    def test_work_stealing_with_watchdog_active(self, node):
        # The watchdog's scan timers must not perturb scheduling: an
        # idle core still steals, every uthread finishes, nothing trips.
        from repro.runtime import Watchdog
        rt = Runtime(node, cores=node.cores[:2], steal=True)
        wd = Watchdog(rt, default_budget_ns=50_000_000)
        ran_on = []
        def worker(i):
            yield Compute(5_000)
            ran_on.append(i)
        for i in range(6):
            rt.spawn(worker(i), core=0)
        node.run()
        assert len(ran_on) == 6
        assert rt.schedulers[1].steals > 0
        assert rt.overload_stats.watchdog_trips == 0
        assert not wd.reports

    class _Hang:
        """Syscall result whose completion never fires."""
        is_async = True
        continuation = None
        ctx = None

        def __init__(self, event):
            self.pending = event

    def test_hang_report_carries_trace_context(self, node):
        # With tracing on, the report names the hung syscall's trace op
        # and quotes the last thing it did before going quiet.
        from repro.obs import Tracer
        from repro.runtime import Watchdog
        node.engine.tracer = Tracer(node.engine)
        rt = Runtime(node, cores=node.cores[:1])
        wd = Watchdog(rt, grace_factor=2)
        hang = self._Hang

        def hang_op(ctx):
            ctx.trace_point("dma_submit", track="ch0", sn=1,
                            nbytes=4096, write=True)
            return hang(node.engine.event())
            yield  # pragma: no cover - makes ``hang_op`` a generator

        def body():
            yield Syscall(hang_op)
        ut = rt.spawn(body(), name="wedged", deadline=node.now + 5_000)
        node.run()
        report = wd.reports[0]
        assert report.trace_op is not None
        assert report.trace_op == ut.last_op_id
        assert "dma_submit" in report.last_trace_event
        rendered = report.render()
        assert f"trace: op {report.trace_op}" in rendered
        assert "dma_submit" in rendered

    def test_hang_report_without_tracer_omits_trace_line(self, node):
        from repro.runtime import Watchdog
        rt = Runtime(node, cores=node.cores[:1])
        wd = Watchdog(rt, grace_factor=2)
        hang = self._Hang

        def hang_op(ctx):
            return hang(node.engine.event())
            yield  # pragma: no cover

        def body():
            yield Syscall(hang_op)
        rt.spawn(body(), name="untraced", deadline=node.now + 5_000)
        node.run()
        report = wd.reports[0]
        assert report.trace_op is None
        assert report.last_trace_event is None
        assert "trace: op" not in report.render()


class TestEngineScopedNaming:
    """Uthread uids/names must be deterministic per run, not per process.

    The old class-level ``Uthread._seq`` leaked across engines: the
    second engine in a process handed out uids continuing wherever the
    first stopped, so names (and anything keyed on them -- watchdog
    reports, trace labels) depended on what happened to run before.
    """

    def _run_one(self):
        from repro.hw.platform import Platform, PlatformConfig
        node = Platform(PlatformConfig.single_node())
        rt = Runtime(node, cores=node.cores[:1])
        names = []

        def w(tag):
            yield Compute(10 * tag)

        uts = [rt.spawn(w(i)) for i in range(4)]
        node.run()
        names = [(ut.uid, ut.name) for ut in uts]
        return names

    def test_two_engines_same_run_are_identical(self):
        first = self._run_one()
        second = self._run_one()
        assert first == second
        assert first[0] == (1, "uthread-1")

    def test_name_seq_is_per_engine_and_per_kind(self):
        from repro.sim import Engine
        a, b = Engine(), Engine()
        assert [a.name_seq("uthread") for _ in range(3)] == [1, 2, 3]
        # A fresh engine starts over; a different kind has its own space.
        assert b.name_seq("uthread") == 1
        assert a.name_seq("other") == 1
