"""Coverage-map unit tests (ISSUE 10 satellite): identical seeded runs
produce identical signatures, and adding a fault window strictly grows
the trace-vocabulary signature -- the canary for silent breakage in
the coverage-extraction hooks the whole guided search leans on.
"""

from repro.fuzz import (CoverageMap, FaultSpec, ScenarioTuple,
                        WorkloadSpec, make_op, merge_coverage,
                        run_scenario, schedule_from_seed)
from repro.obs.coverage import (bucket, counter_buckets, trace_vocabulary,
                                track_class)


def _plain():
    return ScenarioTuple(workload=schedule_from_seed(17, n_ops=6))


# -- extractor units ---------------------------------------------------

def test_track_class_strips_indices():
    assert track_class("ch3") == "ch"
    assert track_class("node12") == "node"
    assert track_class("fs") == "fs"
    assert track_class("42") == "42"  # all-digit stays itself


def test_bucket_is_log2():
    assert [bucket(v) for v in (0, 1, 2, 3, 4, 7, 8, 1000)] \
        == [0, 1, 2, 2, 3, 3, 4, 10]


def test_counter_buckets_skip_zero_and_non_numeric():
    keys = counter_buckets("x", {"a": 0, "b": 3, "c": "n/a", "d": 1})
    assert keys == {"ctr:x:b:2", "ctr:x:d:1"}


# -- end-to-end signature determinism ----------------------------------

def test_identical_seeded_runs_identical_signatures():
    t = _plain()
    r1, r2 = run_scenario(t), run_scenario(t)
    assert r1.coverage == r2.coverage
    assert r1.signature() == r2.signature()
    assert r1.outcomes == r2.outcomes


def test_extra_fault_window_strictly_grows_vocabulary():
    """A run that additionally halts a channel must reach trace events
    (dma fault/recovery vocabulary) the clean run cannot."""
    ops = (make_op("write", 0, 0, 8192, 3),
           make_op("write", 0, 8192, 8192, 4))
    clean = run_scenario(ScenarioTuple(workload=WorkloadSpec(ops=ops)))
    faulty = run_scenario(ScenarioTuple(
        workload=WorkloadSpec(ops=ops),
        fault=FaultSpec(halts=((0, 1),))))
    clean_vocab = {k for k in clean.coverage if k.startswith("ev:")}
    faulty_vocab = {k for k in faulty.coverage if k.startswith("ev:")}
    assert faulty_vocab > clean_vocab, \
        "fault injection did not grow the trace vocabulary"


def test_ack_gap_near_miss_emitted():
    r = run_scenario(_plain())
    assert any(k.startswith("near:ackgap:") for k in r.coverage), \
        "no ack-to-durable near-miss signal on a write workload"


def test_vocabulary_channel_agnostic():
    """A fault on ch0 and the same fault on ch5 are one coverage
    class: vocabulary keys use the track *class*, not the index."""
    from repro.obs.trace import POINT, TraceEvent
    a = TraceEvent(t=10, ph=POINT, name="dma_fault", track="ch0",
                   op=None, args={})
    b = TraceEvent(t=99, ph=POINT, name="dma_fault", track="ch5",
                   op=None, args={})
    assert trace_vocabulary([a]) == trace_vocabulary([b]) \
        == {"ev:ch:i:dma_fault"}


# -- CoverageMap -------------------------------------------------------

def test_coverage_map_novelty_and_observe():
    m = CoverageMap()
    assert m.novelty(["a", "b"]) == 2
    assert m.observe(["a", "b"]) == 2
    assert m.observe(["a", "c"]) == 1
    assert m.hits == {"a": 2, "b": 1, "c": 1}
    assert m.observed_runs == 2
    assert len(m) == 3


def test_coverage_map_signature_order_independent():
    m1, m2 = CoverageMap(), CoverageMap()
    m1.observe(["a", "b", "c"])
    m2.observe(["c"])
    m2.observe(["b", "a"])
    assert m1.signature() == m2.signature()  # hit counts excluded


def test_merge_coverage():
    m1, m2 = CoverageMap(), CoverageMap()
    m1.observe(["a", "b"])
    m2.observe(["b", "c"])
    merged = merge_coverage([m1, m2])
    assert merged.hits == {"a": 1, "b": 2, "c": 1}
    assert merged.observed_runs == 2
