"""Golden equivalence: the refactored I/O pipeline is behaviour-preserving.

``tests/data/golden_pre_refactor.json`` holds fixed-seed summary
metrics (Figure 2 copy bandwidth, Figure 8 single-op latency and
breakdowns, Figure 9 throughput/latency) captured at the last commit
before the unified pipeline refactor.  The simulator is deterministic,
so the refactored code must reproduce every number **exactly** -- any
drift means the refactor changed the simulated event order, not just
the code structure.

Regenerate the golden file (only after an *intentional* behaviour
change) with::

    PYTHONPATH=src python tests/data/capture_golden.py
"""

import json
import os

import pytest

from repro.obs import default_tracing
from tests.data.capture_golden import fig02, fig08, fig09

GOLDEN = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "data", "golden_pre_refactor.json")


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN) as f:
        return json.load(f)


def _assert_exact(actual, expected, label):
    assert sorted(actual) == sorted(expected), \
        f"{label}: key sets differ"
    for key in expected:
        assert actual[key] == expected[key], \
            f"{label}[{key}]: {actual[key]!r} != golden {expected[key]!r}"


@pytest.mark.slow
def test_fig02_copy_bandwidth_exact(golden):
    _assert_exact(fig02(), golden["fig02"], "fig02")


@pytest.mark.slow
def test_fig08_single_op_latency_exact(golden):
    actual = fig08()
    _assert_exact(actual, golden["fig08"], "fig08")
    # The breakdown dicts nest one level deeper; spot-check shape.
    sample = next(iter(actual.values()))
    assert set(sample) == {"lat", "cpu", "breakdown"}


@pytest.mark.slow
def test_fig09_throughput_latency_exact(golden):
    _assert_exact(fig09(), golden["fig09"], "fig09")


# ---------------------------------------------------------------------------
# Payload-elision / parallel-runner equivalence: the performance modes
# must reproduce the same golden numbers bit for bit.  (fig02 has no
# filesystem data plane -- it measures raw copy bandwidth -- so there
# is no elided variant of it to check.)
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_fig08_elided_payloads_exact(golden):
    _assert_exact(fig08(elide=True), golden["fig08"], "fig08[elide]")


@pytest.mark.slow
def test_fig09_elided_payloads_exact(golden):
    _assert_exact(fig09(elide=True), golden["fig09"], "fig09[elide]")


@pytest.mark.slow
def test_fig09_parallel_runner_exact(golden):
    # Elision plus the multiprocessing sweep runner -- exactly how the
    # perf harness runs its "fast" configuration.
    _assert_exact(fig09(elide=True, processes=2), golden["fig09"],
                  "fig09[elide+parallel]")


# ---------------------------------------------------------------------------
# Tracing is sim-time neutral: with a tracer attached to every engine
# the fixed-seed summaries still match the goldens *exactly* -- the
# tracer only appends to a buffer, it never perturbs the simulation.
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_fig08_traced_exact(golden):
    tracers = []
    with default_tracing(collect=tracers):
        actual = fig08()
    _assert_exact(actual, golden["fig08"], "fig08[traced]")
    assert sum(tr.emitted for tr in tracers) > 0, "nothing was traced"


@pytest.mark.slow
def test_fig09_traced_ring_buffer_exact(golden):
    # Ring-buffer mode on a long sweep: bounded memory, same numbers.
    capacity = 4096
    tracers = []
    with default_tracing(capacity=capacity, collect=tracers):
        actual = fig09()
    _assert_exact(actual, golden["fig09"], "fig09[traced+ring]")
    assert tracers, "nothing was traced"
    assert all(len(tr) <= capacity for tr in tracers)
