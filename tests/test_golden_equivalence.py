"""Golden equivalence: the refactored I/O pipeline is behaviour-preserving.

``tests/data/golden_pre_refactor.json`` holds fixed-seed summary
metrics (Figure 2 copy bandwidth, Figure 8 single-op latency and
breakdowns, Figure 9 throughput/latency) captured at the last commit
before the unified pipeline refactor.  The simulator is deterministic,
so the refactored code must reproduce every number **exactly** -- any
drift means the refactor changed the simulated event order, not just
the code structure.

Regenerate the golden file (only after an *intentional* behaviour
change) with::

    PYTHONPATH=src python tests/data/capture_golden.py
"""

import json
import os

import pytest

from repro.obs import default_tracing
from tests.data.capture_golden import fig02, fig08, fig09

GOLDEN = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "data", "golden_pre_refactor.json")


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN) as f:
        return json.load(f)


def _assert_exact(actual, expected, label):
    assert sorted(actual) == sorted(expected), \
        f"{label}: key sets differ"
    for key in expected:
        assert actual[key] == expected[key], \
            f"{label}[{key}]: {actual[key]!r} != golden {expected[key]!r}"


@pytest.mark.slow
def test_fig02_copy_bandwidth_exact(golden):
    _assert_exact(fig02(), golden["fig02"], "fig02")


@pytest.mark.slow
def test_fig08_single_op_latency_exact(golden):
    actual = fig08()
    _assert_exact(actual, golden["fig08"], "fig08")
    # The breakdown dicts nest one level deeper; spot-check shape.
    sample = next(iter(actual.values()))
    assert set(sample) == {"lat", "cpu", "breakdown"}


@pytest.mark.slow
def test_fig09_throughput_latency_exact(golden):
    _assert_exact(fig09(), golden["fig09"], "fig09")


# ---------------------------------------------------------------------------
# Payload-elision / parallel-runner equivalence: the performance modes
# must reproduce the same golden numbers bit for bit.  (fig02 has no
# filesystem data plane -- it measures raw copy bandwidth -- so there
# is no elided variant of it to check.)
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_fig08_elided_payloads_exact(golden):
    _assert_exact(fig08(elide=True), golden["fig08"], "fig08[elide]")


@pytest.mark.slow
def test_fig09_elided_payloads_exact(golden):
    _assert_exact(fig09(elide=True), golden["fig09"], "fig09[elide]")


@pytest.mark.slow
def test_fig09_parallel_runner_exact(golden):
    # Elision plus the multiprocessing sweep runner -- exactly how the
    # perf harness runs its "fast" configuration.
    _assert_exact(fig09(elide=True, processes=2), golden["fig09"],
                  "fig09[elide+parallel]")


# ---------------------------------------------------------------------------
# Event-core configurations: the packed-heap reference scheduler, the
# timing wheel, and the wheel with macro-op DMA aggregation must all
# reproduce the goldens bit for bit.  (The ambient default -- wheel +
# macro-ops -- is what every other test in this file runs under.)
# ---------------------------------------------------------------------------
EVENT_CORE_CONFIGS = [
    ("heap", False), ("heap", True), ("wheel", False), ("wheel", True),
]


@pytest.fixture(params=EVENT_CORE_CONFIGS,
                ids=[f"{s}{'+macro' if m else ''}"
                     for s, m in EVENT_CORE_CONFIGS])
def event_core(request, monkeypatch):
    scheduler, macro_ops = request.param
    import repro.hw.dma as dma
    import repro.sim.queues as queues
    monkeypatch.setattr(queues, "DEFAULT_SCHEDULER", scheduler)
    monkeypatch.setattr(dma, "DMA_MACRO_OPS", macro_ops)
    return request.param


@pytest.mark.slow
def test_fig08_exact_under_event_core_matrix(golden, event_core):
    _assert_exact(fig08(), golden["fig08"], f"fig08[{event_core}]")


@pytest.mark.slow
def test_fig09_point_exact_under_event_core_matrix(golden, event_core):
    from repro.analysis.sweep import fxmark_point
    from repro.workloads.fxmark import FxmarkConfig
    cfg = FxmarkConfig(kind="easyio", op="write", io_size=16384,
                       workers=4, duration_us=1200, warmup_us=300)
    actual = fxmark_point(cfg)
    _assert_exact(actual, golden["fig09"]["write/easyio/4"],
                  f"fig09[write/easyio/4][{event_core}]")


@pytest.mark.slow
def test_macro_ops_engage_on_steady_state(event_core):
    # Guard against silently testing the classic path four times: when
    # macro-ops are enabled the easyio DMA write path must actually use
    # the aggregated chain.
    from repro.hw.platform import Platform
    from repro.workloads.fxmark import FxmarkConfig, run_fxmark
    scheduler, macro_ops = event_core
    counts = []
    orig_init = Platform.__init__
    def spying_init(self, *a, **kw):
        orig_init(self, *a, **kw)
        counts.append(self.dma.channels)
    Platform.__init__ = spying_init
    try:
        run_fxmark(FxmarkConfig(kind="easyio", op="write", io_size=16384,
                                workers=2, duration_us=300, warmup_us=100))
    finally:
        Platform.__init__ = orig_init
    aggregated = sum(ch.descriptors_aggregated
                     for chans in counts for ch in chans)
    completed = sum(ch.descriptors_completed
                    for chans in counts for ch in chans)
    assert completed > 0
    if macro_ops:
        assert aggregated == completed
    else:
        assert aggregated == 0


# ---------------------------------------------------------------------------
# Tracing is sim-time neutral: with a tracer attached to every engine
# the fixed-seed summaries still match the goldens *exactly* -- the
# tracer only appends to a buffer, it never perturbs the simulation.
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_fig08_traced_exact(golden):
    tracers = []
    with default_tracing(collect=tracers):
        actual = fig08()
    _assert_exact(actual, golden["fig08"], "fig08[traced]")
    assert sum(tr.emitted for tr in tracers) > 0, "nothing was traced"


@pytest.mark.slow
def test_fig09_traced_ring_buffer_exact(golden):
    # Ring-buffer mode on a long sweep: bounded memory, same numbers.
    capacity = 4096
    tracers = []
    with default_tracing(capacity=capacity, collect=tracers):
        actual = fig09()
    _assert_exact(actual, golden["fig09"], "fig09[traced+ring]")
    assert tracers, "nothing was traced"
    assert all(len(tr) <= capacity for tr in tracers)
