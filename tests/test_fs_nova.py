"""Tests for the NOVA baseline filesystem: namespace + data paths."""

import pytest

from repro.fs import FsError, NovaFS, PMImage
from repro.fs.structures import PAGE_SIZE, FileKind
from tests.conftest import run_proc


@pytest.fixture
def fs(node):
    return NovaFS(node, PMImage()).mount()


def do(fs, gen):
    return run_proc(fs.engine, gen)


class TestNamespace:
    def test_create_and_lookup(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        assert do(fs, fs.lookup(fs.context(), "/a")) == ino

    def test_create_duplicate_rejected(self, fs):
        do(fs, fs.create(fs.context(), "/a"))
        with pytest.raises(FsError, match="exists"):
            do(fs, fs.create(fs.context(), "/a"))

    def test_lookup_missing_rejected(self, fs):
        with pytest.raises(FsError, match="no such file"):
            do(fs, fs.lookup(fs.context(), "/nope"))

    def test_mkdir_and_nested_create(self, fs):
        do(fs, fs.mkdir(fs.context(), "/d"))
        ino = do(fs, fs.create(fs.context(), "/d/x"))
        assert do(fs, fs.lookup(fs.context(), "/d/x")) == ino

    def test_create_in_missing_dir_rejected(self, fs):
        with pytest.raises(FsError, match="no such directory"):
            do(fs, fs.create(fs.context(), "/missing/x"))

    def test_path_through_file_rejected(self, fs):
        do(fs, fs.create(fs.context(), "/f"))
        with pytest.raises(FsError, match="not a directory"):
            do(fs, fs.create(fs.context(), "/f/x"))

    def test_unlink_removes_name(self, fs):
        do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.unlink(fs.context(), "/a"))
        with pytest.raises(FsError):
            do(fs, fs.lookup(fs.context(), "/a"))

    def test_unlink_missing_rejected(self, fs):
        with pytest.raises(FsError):
            do(fs, fs.unlink(fs.context(), "/ghost"))

    def test_unlink_frees_inode_and_pages(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.write(fs.context(), ino, 0, PAGE_SIZE * 4))
        before = fs.allocator.pages_freed
        do(fs, fs.unlink(fs.context(), "/a"))
        assert fs.allocator.pages_freed == before + 4
        assert ino not in fs._mem

    def test_hard_link_shares_inode(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.link(fs.context(), "/a", "/b"))
        assert do(fs, fs.lookup(fs.context(), "/b")) == ino
        assert fs.minode(ino).links == 2
        do(fs, fs.unlink(fs.context(), "/a"))
        # Still reachable through the second link.
        assert do(fs, fs.lookup(fs.context(), "/b")) == ino
        assert fs.minode(ino).links == 1

    def test_link_directory_rejected(self, fs):
        do(fs, fs.mkdir(fs.context(), "/d"))
        with pytest.raises(FsError):
            do(fs, fs.link(fs.context(), "/d", "/d2"))

    def test_rename_moves_name(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.rename(fs.context(), "/a", "/b"))
        assert do(fs, fs.lookup(fs.context(), "/b")) == ino
        with pytest.raises(FsError):
            do(fs, fs.lookup(fs.context(), "/a"))

    def test_rename_across_directories(self, fs):
        do(fs, fs.mkdir(fs.context(), "/d1"))
        do(fs, fs.mkdir(fs.context(), "/d2"))
        ino = do(fs, fs.create(fs.context(), "/d1/f"))
        do(fs, fs.rename(fs.context(), "/d1/f", "/d2/g"))
        assert do(fs, fs.lookup(fs.context(), "/d2/g")) == ino

    def test_rename_replaces_existing_target(self, fs):
        a = do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.create(fs.context(), "/b"))
        do(fs, fs.rename(fs.context(), "/a", "/b"))
        assert do(fs, fs.lookup(fs.context(), "/b")) == a

    def test_rename_journal_is_closed_after_success(self, fs):
        do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.rename(fs.context(), "/a", "/b"))
        assert fs.image.journal == []

    def test_stat_reports_size_and_kind(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.write(fs.context(), ino, 0, 5000))
        st = do(fs, fs.stat(fs.context(), "/a"))
        assert st[0] == ino
        assert st[1] is FileKind.FILE
        assert st[2] == 5000

    def test_invalid_path_rejected(self, fs):
        with pytest.raises(FsError):
            do(fs, fs.lookup(fs.context(), "///"))


class TestWrite:
    def test_write_returns_byte_count(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        result = do(fs, fs.write(fs.context(), ino, 0, 8192))
        assert result.value == 8192
        assert result.pending is None

    def test_write_grows_size(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.write(fs.context(), ino, 0, 4096))
        do(fs, fs.write(fs.context(), ino, 8192, 4096))
        assert fs.minode(ino).size == 12288

    def test_payload_length_must_match(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        with pytest.raises(FsError):
            do(fs, fs.write(fs.context(), ino, 0, 10, b"short"))

    def test_negative_offset_rejected(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        with pytest.raises(FsError):
            do(fs, fs.write(fs.context(), ino, -1, 10))

    def test_zero_byte_write_is_noop(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        result = do(fs, fs.write(fs.context(), ino, 0, 0))
        assert result.value == 0
        assert fs.minode(ino).size == 0

    def test_write_to_directory_rejected(self, fs):
        do(fs, fs.mkdir(fs.context(), "/d"))
        ino = do(fs, fs.lookup(fs.context(), "/d"))
        with pytest.raises(FsError, match="not a regular file"):
            do(fs, fs.write(fs.context(), ino, 0, 100))

    def test_cow_replaces_pages(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.write(fs.context(), ino, 0, PAGE_SIZE))
        first = fs.minode(ino).index[0].page_id
        do(fs, fs.write(fs.context(), ino, 0, PAGE_SIZE))
        second = fs.minode(ino).index[0].page_id
        assert first != second

    def test_readback_round_trip(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        data = bytes(range(256)) * 40  # 10240 bytes
        do(fs, fs.write(fs.context(), ino, 0, len(data), data))
        result = do(fs, fs.read(fs.context(), ino, 0, len(data),
                                want_data=True))
        assert result.value == data

    def test_partial_page_overwrite_merges(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        base = b"A" * PAGE_SIZE
        do(fs, fs.write(fs.context(), ino, 0, PAGE_SIZE, base))
        do(fs, fs.write(fs.context(), ino, 100, 50, b"B" * 50))
        result = do(fs, fs.read(fs.context(), ino, 0, PAGE_SIZE,
                                want_data=True))
        expected = bytearray(base)
        expected[100:150] = b"B" * 50
        assert result.value == bytes(expected)

    def test_unaligned_cross_page_write(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.write(fs.context(), ino, 0, 3 * PAGE_SIZE,
                        b"x" * (3 * PAGE_SIZE)))
        do(fs, fs.write(fs.context(), ino, PAGE_SIZE - 10, 20, b"y" * 20))
        result = do(fs, fs.read(fs.context(), ino, PAGE_SIZE - 10, 20,
                                want_data=True))
        assert result.value == b"y" * 20

    def test_append_writes_at_eof(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.write(fs.context(), ino, 0, 4096, b"a" * 4096))
        do(fs, fs.append(fs.context(), ino, 4096, b"b" * 4096))
        result = do(fs, fs.read(fs.context(), ino, 4096, 4096,
                                want_data=True))
        assert result.value == b"b" * 4096

    def test_truncate_shrinks_and_frees(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.write(fs.context(), ino, 0, 4 * PAGE_SIZE))
        freed_before = fs.allocator.pages_freed
        do(fs, fs.truncate(fs.context(), ino, PAGE_SIZE))
        assert fs.minode(ino).size == PAGE_SIZE
        assert fs.allocator.pages_freed == freed_before + 3


class TestRead:
    def test_read_clamps_to_eof(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.write(fs.context(), ino, 0, 1000, b"z" * 1000))
        result = do(fs, fs.read(fs.context(), ino, 500, 10_000,
                                want_data=True))
        assert result.value == b"z" * 500

    def test_read_past_eof_returns_empty(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        result = do(fs, fs.read(fs.context(), ino, 100, 10, want_data=True))
        assert result.value == b""

    def test_read_hole_returns_zeros(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        # Write only the third page; pages 0-1 are holes.
        do(fs, fs.write(fs.context(), ino, 2 * PAGE_SIZE, PAGE_SIZE,
                        b"q" * PAGE_SIZE))
        result = do(fs, fs.read(fs.context(), ino, 0, 3 * PAGE_SIZE,
                                want_data=True))
        assert result.value == bytes(2 * PAGE_SIZE) + b"q" * PAGE_SIZE

    def test_read_returns_count_without_want_data(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.write(fs.context(), ino, 0, 6000))
        result = do(fs, fs.read(fs.context(), ino, 0, 6000))
        assert result.value == 6000


class TestAccounting:
    def test_breakdown_phases_cover_latency(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        ctx = fs.context()
        t0 = fs.engine.now
        do(fs, fs.write(ctx, ino, 0, 65536))
        elapsed = fs.engine.now - t0
        assert sum(ctx.breakdown.values()) == pytest.approx(elapsed, rel=0.02)

    def test_memcpy_dominates_large_reads(self, fs):
        """Figure 1's headline: up to ~95 % of read CPU is data copy."""
        ino = do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.write(fs.context(), ino, 0, 65536))
        ctx = fs.context()
        do(fs, fs.read(ctx, ino, 0, 65536))
        total = sum(ctx.breakdown.values())
        assert ctx.breakdown["memcpy"] / total > 0.85

    def test_sync_write_cpu_equals_latency(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        ctx = fs.context()
        t0 = fs.engine.now
        do(fs, fs.write(ctx, ino, 0, 16384))
        assert ctx.cpu_ns == fs.engine.now - t0

    def test_ops_completed_counter(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        before = fs.ops_completed
        do(fs, fs.write(fs.context(), ino, 0, 4096))
        do(fs, fs.read(fs.context(), ino, 0, 4096))
        assert fs.ops_completed == before + 2


class TestConcurrency:
    def test_concurrent_writers_serialize_on_file_lock(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        spans = []
        def writer(i):
            ctx = fs.context()
            t0 = fs.engine.now
            yield from fs.write(ctx, ino, i * PAGE_SIZE, PAGE_SIZE)
            spans.append((t0, fs.engine.now))
        for i in range(3):
            fs.engine.process(writer(i))
        fs.engine.run()
        # Three writes must take at least 3x one write's copy time.
        durations = sorted(end for _s, end in spans)
        assert durations[-1] > durations[0] * 1.8

    def test_readers_do_not_serialize(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.write(fs.context(), ino, 0, PAGE_SIZE * 8))
        ends = []
        def reader():
            ctx = fs.context()
            yield from fs.read(ctx, ino, 0, PAGE_SIZE)
            ends.append(fs.engine.now)
        for _ in range(3):
            fs.engine.process(reader())
        fs.engine.run()
        # Shared lock: all three overlap, finishing within ~2x of one.
        assert max(ends) < min(ends) * 2.1
