"""Tests for the comparison filesystems (NOVA-DMA, Odinfs)."""

import pytest

from repro.baselines import NovaDmaFS, OdinfsFS
from repro.fs import PMImage
from repro.fs.structures import PAGE_SIZE
from tests.conftest import run_proc


def do(fs, gen):
    return run_proc(fs.engine, gen)


class TestNovaDma:
    @pytest.fixture
    def fs(self, node):
        return NovaDmaFS(node, PMImage()).mount()

    def test_interface_is_synchronous(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        result = do(fs, fs.write(fs.context(), ino, 0, 65536))
        assert result.pending is None
        assert fs.dma_writes == 1

    def test_small_io_stays_on_cpu(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.write(fs.context(), ino, 0, 4096))
        assert fs.dma_writes == 0
        assert fs.memcpy_ops == 1

    def test_busy_polling_burns_cpu_for_full_latency(self, fs):
        """The critical difference from EasyIO: CPU time == latency."""
        ino = do(fs, fs.create(fs.context(), "/a"))
        ctx = fs.context()
        t0 = fs.engine.now
        do(fs, fs.write(ctx, ino, 0, 65536))
        assert ctx.cpu_ns == fs.engine.now - t0

    def test_data_round_trip(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        data = b"\x5a" * 65536
        do(fs, fs.write(fs.context(), ino, 0, len(data), data))
        result = do(fs, fs.read(fs.context(), ino, 0, len(data),
                                want_data=True))
        assert result.value == data

    def test_uses_all_channels(self, fs, node):
        ino = do(fs, fs.create(fs.context(), "/a"))
        def burst():
            procs = []
            for i in range(8):
                ctx = fs.context()
                yield from fs.write(ctx, ino, i * 65536, 65536)
        do(fs, burst())
        used = sum(1 for ch in node.dma.channels if ch.bytes_moved > 0)
        # Sequential ops round-robin over the least-loaded channel set;
        # more than one channel must have seen traffic.
        assert used >= 1

    def test_log_entries_carry_no_sns(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.write(fs.context(), ino, 0, 65536))
        entry = fs.image.committed_log(ino)[-1]
        assert entry.sns == ()


class TestOdinfs:
    @pytest.fixture
    def fs(self, node):
        return OdinfsFS(node, PMImage(),
                        delegation_cores=node.cores[-4:]).mount()

    def test_reserves_delegation_cores(self, fs):
        assert fs.reserved_cores == 4

    def test_default_reservation_is_12_per_socket(self, node):
        fs = OdinfsFS(node, PMImage()).mount()
        assert fs.reserved_cores == 12 * node.config.sockets

    def test_write_delegates_in_chunks(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        before = fs.requests_delegated
        do(fs, fs.write(fs.context(), ino, 0, 128 * 1024))
        chunk = fs.model.delegation_chunk
        assert fs.requests_delegated - before == 128 * 1024 // chunk

    def test_app_core_sleeps_while_delegates_copy(self, fs, node):
        ino = do(fs, fs.create(fs.context(), "/a"))
        core = node.cores[0]
        def body():
            core.mark_busy("app")
            try:
                ctx = fs.context(core=core)
                yield from fs.write(ctx, ino, 0, 1 << 20)
            finally:
                core.mark_idle()
        t0 = node.now
        run_proc(node.engine, body())
        elapsed = node.now - t0
        # The app core must have been idle for most of the copy.
        assert core.busy_ns() < elapsed * 0.5

    def test_delegation_cores_do_the_work(self, fs, node):
        ino = do(fs, fs.create(fs.context(), "/a"))
        do(fs, fs.write(fs.context(), ino, 0, 1 << 20))
        busy = sum(c.busy_ns() for c in fs.delegation_cores)
        assert busy > 0

    def test_large_io_parallelism_beats_nova_latency(self, node):
        """Odinfs splits a large I/O across delegation threads, so it
        finishes faster than one core's memcpy (Fig 8, large I/O)."""
        from repro.fs import NovaFS
        from repro.hw.platform import Platform, PlatformConfig

        def write_time(make_fs):
            plat = Platform(PlatformConfig.single_node())
            fs = make_fs(plat).mount()
            def body():
                ino = yield from fs.create(fs.context(), "/a")
                t0 = plat.now
                yield from fs.write(fs.context(), ino, 0, 1 << 20)
                return plat.now - t0
            return run_proc(plat.engine, body())

        t_odinfs = write_time(lambda p: OdinfsFS(p, PMImage(),
                                                 delegation_cores=p.cores[-12:]))
        t_nova = write_time(lambda p: NovaFS(p, PMImage()))
        assert t_odinfs < t_nova

    def test_data_round_trip(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        data = b"\xa5" * (3 * PAGE_SIZE)
        do(fs, fs.write(fs.context(), ino, 0, len(data), data))
        result = do(fs, fs.read(fs.context(), ino, 0, len(data),
                                want_data=True))
        assert result.value == data

    def test_needs_at_least_one_delegation_core(self, node):
        with pytest.raises(ValueError):
            OdinfsFS(node, PMImage(), delegation_cores=[])
