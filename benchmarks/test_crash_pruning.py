"""Mechanism-aware crash-state pruning vs the brute-force page sweep.

The pruning claim: on generic_056 the line planner's mechanism
reasoning reaches the same verdict (all plans pass) while replaying at
least 5x fewer states than the 1000-point page sweep -- and those
plans stand in for an astronomically larger raw line-subset space.

Also pins the parallel crash-sweep runner: the multiprocessing pool
must return byte-identical summaries to the serial path for all four
Table 2 workloads.
"""

from benchmarks.conftest import run_once, show
from repro.analysis.report import banner, fmt_table
from repro.analysis.sweep import run_crash_sweep
from repro.crash import CRASH_WORKLOADS, run_crash_test

BRUTE_POINTS = 1000
PRUNE_FACTOR = 5


def reproduce():
    brute = run_crash_test("easyio", "generic_056",
                           crash_points=BRUTE_POINTS)
    pruned = run_crash_test("easyio", "generic_056", granularity="line",
                            per_signature=3)
    return brute, pruned


def test_crash_pruning_vs_brute(benchmark):
    brute, pruned = run_once(benchmark, reproduce)
    show(banner("Crash-state pruning: page brute force vs line plans "
                "(easyio/generic_056)"))
    show(fmt_table(
        ["sweep", "states replayed", "passed", "raw line states"],
        [["page (brute)", brute.total_crash_points, brute.passed, "-"],
         ["line (pruned)", pruned.total_crash_points, pruned.passed,
          f"{pruned.raw_states:.2e}"]]))
    # Same verdict...
    assert brute.all_passed, brute.failures[:3]
    assert pruned.all_passed, pruned.failures[:3]
    # ...with >= 5x fewer replayed states...
    assert pruned.total_crash_points * PRUNE_FACTOR \
        <= brute.total_crash_points, \
        (pruned.total_crash_points, brute.total_crash_points)
    # ...standing in for an astronomically larger raw state space.
    assert pruned.raw_states > 10 ** 30


def test_crash_sweep_parallel_determinism():
    """Serial and 2-worker pool runs of the Table 2 line sweep return
    identical summaries, in input order (all four workloads)."""
    specs = [{"kind": "easyio", "workload": wl, "granularity": "line",
              "per_signature": 2}
             for wl in sorted(CRASH_WORKLOADS)]
    serial = run_crash_sweep(specs, processes=1)
    pooled = run_crash_sweep(specs, processes=2)
    assert serial == pooled
    assert [s["workload"] for s in serial] == sorted(CRASH_WORKLOADS)
    for summary in serial:
        assert summary["all_passed"], summary
        assert summary["granularity"] == "line"
        assert summary["raw_states"] > 0
