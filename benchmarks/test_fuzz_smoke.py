"""CI fuzz-smoke: a fixed-seed, tuple-budgeted campaign per mutant.

The continuous claim behind the committed corpus (ISSUE 10): the
fuzzer, started from its seed corpus with a *fixed* seed and a small
budget, re-finds both planted ``CRASH_MUTANTS`` and shrinks them to
reproducers -- every run, within the budget, deterministically.  The
companion claim: the same budget on unmutated main finds nothing (the
detectors stay false-positive-free).

Artifacts: every campaign's report -- including any failing tuple and
its shrunk reproducer -- lands in ``fuzz_smoke_report.json`` (or
``$REPRO_FUZZ_ARTIFACTS``), which the CI job uploads.  A new failure
on main therefore arrives with its minimal reproducer attached, ready
to triage into ``tests/corpus/``.
"""

import json
import os

import pytest

from benchmarks.conftest import run_once, show
from repro.core.easyio import CRASH_MUTANTS
from repro.fuzz import (FuzzConfig, ScenarioTuple, run_campaign,
                        run_scenario, shrink)

SEED = 2026
BUDGET = 30            # tuples per campaign (well under a CI minute)
BATCH = 6

ARTIFACT = os.environ.get("REPRO_FUZZ_ARTIFACTS",
                          "fuzz_smoke_report.json")


def _append_artifact(section: str, payload: dict) -> None:
    data = {}
    if os.path.exists(ARTIFACT):
        with open(ARTIFACT) as f:
            data = json.load(f)
    data[section] = payload
    with open(ARTIFACT, "w") as f:
        json.dump(data, f, indent=1, sort_keys=True)


def _shrunk(failure, mutant):
    """Minimise the first failure exactly like the corpus pipeline."""
    t = ScenarioTuple.from_dict(failure.tuple_dict)
    if mutant is None:
        pred = lambda x: run_scenario(x).failing  # noqa: E731
    else:
        pred = lambda x: (run_scenario(x, mutant=mutant).failing  # noqa: E731
                          and not run_scenario(x).failing)
    mini, evals = shrink(t, pred, seed=0, max_evals=120)
    return {"tuple": mini.to_dict(), "key": mini.key(),
            "size": mini.size(), "from_size": t.size(),
            "shrink_evals": evals}


@pytest.mark.parametrize("mutant", CRASH_MUTANTS)
def test_fuzz_smoke_refinds_planted_mutant(benchmark, mutant):
    report = run_once(benchmark, lambda: run_campaign(
        FuzzConfig(seed=SEED, budget=BUDGET, batch=BATCH,
                   mutant=mutant, stop_after_failures=1)))
    payload = report.as_dict()
    detected = bool(report.failures)
    if detected:
        payload["shrunk"] = _shrunk(report.failures[0], mutant)
    _append_artifact(f"mutant:{mutant}", payload)
    show(f"{mutant}: executed={report.executed} "
         f"signatures={report.distinct_signatures} "
         f"found_at={report.failures[0].found_at if detected else None}")
    assert detected, (f"planted mutant {mutant} not re-found within "
                      f"{BUDGET} tuples (seed {SEED})")
    assert report.failures[0].found_at <= BUDGET


def test_fuzz_smoke_main_is_clean(benchmark):
    """Same budget, no mutant: zero findings on main.  On failure the
    artifact carries the offending tuple plus its shrunk reproducer
    (upload step runs on failure too)."""
    report = run_once(benchmark, lambda: run_campaign(
        FuzzConfig(seed=SEED, budget=BUDGET, batch=BATCH)))
    payload = report.as_dict()
    if report.failures:
        payload["shrunk"] = _shrunk(report.failures[0], None)
    _append_artifact("main", payload)
    show(f"main: executed={report.executed} "
         f"coverage_keys={len(report.coverage)} "
         f"signatures={report.distinct_signatures} "
         f"fingerprint={report.fingerprint()}")
    assert not report.failures, (
        f"fuzz found a failure on main; shrunk reproducer in "
        f"{ARTIFACT}: {report.failures[0].findings[:2]}")


def test_fuzz_smoke_deterministic(benchmark):
    """The CI campaign itself is bit-reproducible (fingerprint equal
    across back-to-back runs in one process)."""
    cfg = FuzzConfig(seed=SEED, budget=10, batch=4)
    a = run_once(benchmark, lambda: run_campaign(cfg))
    b = run_campaign(cfg)
    assert a.fingerprint() == b.fingerprint()
