"""Figure 4: interference between foreground and background programs.

Paper: a foreground program issues 64 KB DMA reads while a background
program periodically moves 2 MB (a GC).  Switching the background from
memcpy to DMA more than doubles foreground latency; *sharing* the
foreground's channel causes catastrophic head-of-line blocking
(log-scale spikes to hundreds of µs).
"""

from benchmarks.conftest import run_once, show
from repro.analysis.report import banner, fmt_table, sparkline
from repro.workloads.hwbench import measure_interference

MODES = ["memcpy", "dma-ex", "dma-sh"]


def reproduce():
    return {mode: measure_interference(mode, duration_us=12_000)
            for mode in MODES}


def test_fig04_fg_bg_interference(benchmark):
    results = run_once(benchmark, reproduce)
    show(banner("Figure 4: FG 64K-read latency under BG bulk movement"))
    rows = []
    for mode, r in results.items():
        rows.append([f"BG-{mode}", r.fg_mean_us(False), r.fg_mean_us(True),
                     r.fg_max_us(True)])
        values = [v for _t, v in r.timeline.bucketed(200_000)]
        show(f"BG-{mode:7s} |{sparkline(values)}|")
    show(fmt_table(["background", "idle mean us", "GC mean us", "GC max us"],
                   rows))

    memcpy, ex, sh = (results[m] for m in MODES)
    # BG-memcpy barely disturbs the foreground.
    assert memcpy.fg_max_us(True) < memcpy.fg_mean_us(False) * 1.5
    # BG-DMA-EX roughly doubles foreground latency during GC.
    assert ex.fg_mean_us(True) > 1.35 * ex.fg_mean_us(False)
    assert ex.fg_mean_us(True) > 1.5 * memcpy.fg_mean_us(True)
    # BG-DMA-SH head-of-line blocks: order-of-magnitude spikes.
    assert sh.fg_max_us(True) > 10 * ex.fg_max_us(True)
    assert sh.fg_max_us(True) > 100, "SH spikes should reach 100s of us"
