"""Shared helpers for the figure/table reproduction benchmarks.

Every file in this directory regenerates one figure or table from the
paper's evaluation.  Each benchmark runs the full simulated experiment
once (via ``benchmark.pedantic(..., rounds=1)``), prints the reproduced
rows/series next to the paper's reference values, and asserts the
*shape* claims (who wins, by roughly what factor, where curves peak) --
absolute numbers come from a calibrated simulator, not the authors'
testbed, and are not expected to match exactly.
"""

def run_once(benchmark, fn):
    """Run the experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def show(text: str) -> None:
    """Print a reproduction artefact (visible with -s; pytest captures
    otherwise but still stores it on failure)."""
    print(text)
