"""Per-subsystem cProfile attribution for the tracked wall-clock units.

The perf trajectory (``BENCH_sim_perf.json``) tells us *that* a sweep
got slower or faster; it does not say *where* the time goes.  This
script profiles the two wall-clock units the vectorised data-plane
(DESIGN.md §15) targets --

* the serial full-payload fig09 throughput-latency sweep, and
* the pruned line-granularity crash sweep (``crash_prune``),

-- and aggregates cumulative/total time per repro subsystem (the
top-level package directory a frame's file lives in: ``hw``, ``crash``,
``sim``, ``analysis``, ...), plus the top functions by tottime.  The
breakdown is committed as ``PROFILE_attribution.json`` next to this
script so each PR's kernel choices are justified by numbers in the
tree, not by folklore.  Usage::

    PYTHONPATH=src python benchmarks/perf/profile_attribution.py
    PYTHONPATH=src python benchmarks/perf/profile_attribution.py --quick
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

DEFAULT_OUT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "PROFILE_attribution.json")

SRC_MARKER = os.path.join("repro", "")


def _subsystem(filename: str) -> str:
    """Map a frame's file to its repro subsystem (or a builtin tag)."""
    idx = filename.rfind(SRC_MARKER)
    if idx < 0:
        return "<other>" if os.sep in filename else "<builtin>"
    rel = filename[idx + len(SRC_MARKER):]
    head = rel.split(os.sep, 1)
    return f"repro.{head[0][:-3]}" if head[0].endswith(".py") and len(head) == 1 \
        else f"repro.{head[0]}"


def profile_unit(label: str, fn) -> dict:
    prof = cProfile.Profile()
    prof.enable()
    fn()
    prof.disable()
    stats = pstats.Stats(prof)
    stats.calc_callees()
    total = stats.total_tt

    by_subsystem: dict = {}
    top_functions = []
    for (filename, lineno, name), (cc, nc, tt, ct, _callers) in \
            stats.stats.items():
        sub = _subsystem(filename)
        agg = by_subsystem.setdefault(sub, {"tottime": 0.0, "calls": 0})
        agg["tottime"] += tt
        agg["calls"] += nc
        top_functions.append((tt, ct, nc, f"{sub}:{name}"))
    top_functions.sort(reverse=True)

    return {
        "label": label,
        "total_tt_s": round(total, 4),
        "by_subsystem": {
            sub: {"tottime_s": round(v["tottime"], 4),
                  "share": round(v["tottime"] / total, 4) if total else 0.0,
                  "calls": v["calls"]}
            for sub, v in sorted(by_subsystem.items(),
                                 key=lambda kv: -kv[1]["tottime"])},
        "top_functions": [
            {"where": where, "tottime_s": round(tt, 4),
             "cumtime_s": round(ct, 4), "calls": nc}
            for tt, ct, nc, where in top_functions[:25]],
    }


def fig09_serial(duration_us: int, warmup_us: int):
    from repro.analysis.sweep import fxmark_sweep
    out = {}
    for op in ("write", "read"):
        out.update(fxmark_sweep(
            ("nova", "nova-dma", "odinfs", "easyio"), (1, 4), op=op,
            io_size=16384, duration_us=duration_us, warmup_us=warmup_us,
            elide=False, processes=1))
    return out


def crash_prune():
    from repro.crash import run_crash_test
    report = run_crash_test("easyio", "generic_056", granularity="line",
                            per_signature=3)
    assert report.all_passed
    return report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="smaller fig09 sweep (same structure)")
    ap.add_argument("--out", default=DEFAULT_OUT)
    args = ap.parse_args(argv)

    from repro import vector

    duration_us, warmup_us = (400, 100) if args.quick else (1200, 300)
    report = {
        "mode": "quick" if args.quick else "full",
        "python": sys.version.split()[0],
        "vector": vector.describe(),
        "units": [
            profile_unit("fig09_sweep_serial",
                         lambda: fig09_serial(duration_us, warmup_us)),
            profile_unit("crash_prune", crash_prune),
        ],
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=1, sort_keys=True)
        f.write("\n")
    for unit in report["units"]:
        print(f"== {unit['label']} ({unit['total_tt_s']}s) ==")
        for sub, v in list(unit["by_subsystem"].items())[:8]:
            print(f"  {sub:<24} {v['tottime_s']:>8.3f}s  "
                  f"{v['share'] * 100:5.1f}%")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
