"""Wall-clock performance harness for the simulator itself.

Everything else in ``benchmarks/`` measures *simulated* metrics; this
script measures how fast the simulator runs on the host:

* ``engine``: a pure engine microbenchmark (pooled sleeps, no
  filesystem) reporting events/sec from :class:`EngineStats`;
* ``fig08_probe``: one single-op latency probe (the Figure 8 unit);
* ``fig09_sweep_serial``: the 16-point Figure 9 throughput-latency
  sweep exactly as the golden capture runs it (full payload plumbing,
  one process);
* ``fig09_sweep_fast``: the same sweep in payload-elision mode through
  the parallel sweep runner -- the configuration performance sweeps
  should use.  The harness asserts its summaries are identical to the
  serial run's before trusting its timing;
* ``replication``: one traced 3-node crash-failover run, cluster
  oracle replay included (the DESIGN.md §12 layer's wall-clock unit);
* ``crash_prune``: one pruned line-granularity crash sweep of
  easyio/generic_056 (record + plan + replay/recover every plan), the
  crash model's wall-clock unit (DESIGN.md §13).

Results land in ``BENCH_sim_perf.json`` at the repo root (committed,
so CI can gate on regressions).  The file is an append-only
*trajectory*: ``{"entries": [...]}``, one labelled report per PR (the
ROADMAP item-2 tracked history), newest last.  A legacy single-report
file is adopted as the first entry.  Usage::

    PYTHONPATH=src python benchmarks/perf/sim_perf.py            # measure + append
    PYTHONPATH=src python benchmarks/perf/sim_perf.py --quick    # CI-sized run
    PYTHONPATH=src python benchmarks/perf/sim_perf.py --check    # gate vs committed
    PYTHONPATH=src python benchmarks/perf/sim_perf.py --label pr9
    PYTHONPATH=src python benchmarks/perf/sim_perf.py --out x.json

``--check`` compares against the committed baseline's **latest entry**
and exits 1 when any wall-clock metric regressed by more than
``REGRESSION_MAX`` (CI runners are noisy; 1.5x is a real regression,
not jitter).  Timings are best-of-``--repeat`` to shave scheduling
noise.  Each report also records the engine microbenchmark under both
event-queue schedulers (``heap`` and ``wheel``) so the trajectory
tracks the scheduler gap PR by PR.
"""

from __future__ import annotations

import argparse
import json
import os
import platform as _platform
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro import vector                               # noqa: E402
from repro.analysis.sweep import fxmark_sweep          # noqa: E402
from repro.sim import Engine                           # noqa: E402
from repro.workloads.fxmark import measure_single_op   # noqa: E402

DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_sim_perf.json")

#: --check fails when a wall-clock metric is this much worse than the
#: committed baseline.
REGRESSION_MAX = 1.5

#: The fig09 sweep wall time at the commit before this harness (and
#: the engine/data-plane optimisations) landed, measured on the same
#: host the committed baseline was captured on.  `speedup_vs_pre_pr`
#: in the report is the fast sweep against this number.
PRE_PR_FIG09_SERIAL_WALL_S = 1.149

FIG09_KINDS = ("nova", "nova-dma", "odinfs", "easyio")
FIG09_WORKERS = (1, 4)


def _best_of(repeat, fn):
    """Best wall-clock of ``repeat`` runs; returns (seconds, result)."""
    best, result = None, None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best, result = dt, out
    return best, result


# ----------------------------------------------------------------------
# Section 1: pure engine throughput
# ----------------------------------------------------------------------
def bench_engine(events_target: int, scheduler=None) -> dict:
    """Events/sec of the bare engine: pooled sleeps across processes."""
    def run():
        engine = Engine(scheduler=scheduler)
        per_proc = events_target // 4

        def ticker():
            sleep = engine.sleep
            for _ in range(per_proc):
                yield sleep(100)

        for _ in range(4):
            engine.process(ticker())
        engine.run()
        return engine.stats.as_dict()

    wall, stats = _best_of(2, run)
    return {
        "wall_s": round(wall, 4),
        "events_fired": stats["events_fired"],
        "events_per_sec": round(stats["events_fired"] / wall),
        "sleeps_reused": stats["sleeps_reused"],
    }


# ----------------------------------------------------------------------
# Section 2: per-figure wall clock
# ----------------------------------------------------------------------
def bench_fig08_probe(repeat: int) -> dict:
    wall, _ = _best_of(repeat, lambda: measure_single_op(
        "easyio", "write", 16384))
    return {"wall_s": round(wall, 4)}


def bench_fig09(repeat: int, duration_us: int, warmup_us: int) -> dict:
    """Serial full-payload sweep vs elided parallel sweep (same grid)."""
    def grid(elide, processes):
        out = {}
        for op in ("write", "read"):
            out.update(fxmark_sweep(
                FIG09_KINDS, FIG09_WORKERS, op=op, io_size=16384,
                duration_us=duration_us, warmup_us=warmup_us,
                elide=elide, processes=processes))
        return out

    serial_wall, serial = _best_of(repeat, lambda: grid(False, 1))
    fast_wall, fast = _best_of(repeat, lambda: grid(True, None))
    if fast != serial:
        drift = sorted(k for k in serial if fast.get(k) != serial[k])
        raise SystemExit(f"FAIL: elided/parallel sweep drifted from the "
                         f"serial run on {drift}")
    points = len(serial)
    return {
        "points": points,
        "fig09_sweep_serial": {"wall_s": round(serial_wall, 4)},
        "fig09_sweep_fast": {"wall_s": round(fast_wall, 4),
                             "elide": True,
                             "processes": os.cpu_count() or 1},
        "speedup_fast_vs_serial": round(serial_wall / fast_wall, 3),
    }


def bench_crash_prune(repeat: int) -> dict:
    """One pruned line-granularity crash sweep (easyio/generic_056):
    record, plan, replay every plan, recover, check -- the crash
    model's wall-clock unit."""
    from repro.crash import run_crash_test

    def run():
        report = run_crash_test("easyio", "generic_056",
                                granularity="line", per_signature=3)
        if not report.all_passed:
            raise SystemExit("FAIL: crash_prune bench found violations: "
                             f"{report.failures[:3]}")
        return report

    wall, report = _best_of(repeat, run)
    out = {
        "wall_s": round(wall, 4),
        "plans": report.total_crash_points,
        "raw_states_log10": round(len(str(report.raw_states)) - 1),
    }
    if vector.HAVE_NUMPY and vector.ENABLED:
        # End-to-end A/B for the acceptance headline: the same sweep
        # with every vectorised kernel forced back to the reference.
        with vector.forced(False):
            wall_off, _ = _best_of(repeat, run)
        out["wall_s_novec"] = round(wall_off, 4)
        out["vector_speedup"] = round(wall_off / wall, 3) if wall else None
    return out


def bench_vector_kernels(repeat: int) -> dict:
    """Per-kernel A/B attribution: each vectorised data-plane kernel
    timed with vectorisation forced on and forced off (same inputs,
    same process), so the trajectory records where the numpy backend
    actually pays.  Skipped entirely when numpy is unavailable."""
    if not vector.HAVE_NUMPY:
        return {"skipped": "numpy unavailable"}

    import random

    from repro.analysis.metrics import LatencySeries
    from repro.crash.crashmonkey import CRASH_WORKLOADS, _record_workload
    from repro.crash.plans import CrashPlanner
    from repro.hw import memory as hw_memory

    def ab(fn) -> dict:
        with vector.forced(True):
            on, _ = _best_of(repeat, fn)
        with vector.forced(False):
            off, _ = _best_of(repeat, fn)
        return {"wall_s_on": round(on, 4), "wall_s_off": round(off, 4),
                "speedup": round(off / on, 3) if on else None}

    out = {}

    # Waterfill: 64-entity allocation, memo cleared per call so the
    # kernel itself is what's measured.
    demands = [float(1 + (i % 4)) for i in range(64)]
    caps = [2.0 + (i % 7) for i in range(64)]

    def run_waterfill():
        for _ in range(300):
            hw_memory.clear_waterfill_cache()
            hw_memory._waterfill(demands, caps, 96.0)
    out["waterfill"] = ab(run_waterfill)

    # Line-stream kernels on the crash bench's own recording.
    desc, driver, iterations = CRASH_WORKLOADS["generic_056"]
    image, _ = _record_workload("easyio", driver, iterations,
                                fault_plan=None, lines=True)
    stream = image.linestream

    def run_planner():
        return CrashPlanner(stream, per_signature=3, seed=0).plans()
    with vector.forced(True):
        plans = run_planner()
    out["planner"] = ab(run_planner)

    from repro.crash import linestream as ls

    def run_replay():
        stream._vec_index = None
        for plan in plans:
            ls.replay_plan(stream, plan)
    out["replay"] = ab(run_replay)

    # Percentiles over a 100k-sample series, queried interleaved.
    rng = random.Random(11)
    samples = [rng.randrange(10 ** 9) for _ in range(100_000)]

    def run_percentiles():
        series = LatencySeries()
        series.samples.extend(samples)
        acc = 0.0
        for p in (50, 90, 99, 99.9):
            acc += series.percentile(p)
        series.record(samples[0])
        return acc + series.p99()
    out["percentiles"] = ab(run_percentiles)
    return out


def bench_replication(repeat: int) -> dict:
    """One traced crash-failover replication run, oracle replay
    included -- the cluster layer's wall-clock unit."""
    from repro.net import NodeCrashFault
    from repro.workloads.replication import (ReplicationConfig,
                                             run_replication)

    def run():
        res = run_replication(ReplicationConfig(
            n_clients=2, writes_per_client=12, seed=42,
            schedule=(NodeCrashFault(0, at_ns=2_000_000,
                                     down_ns=15_000_000),)))
        if not (res.drained and res.goodput == 1.0
                and not res.violations):
            raise SystemExit("FAIL: replication bench run misbehaved")
        return res

    wall, _ = _best_of(repeat, run)
    return {"wall_s": round(wall, 4)}


# ----------------------------------------------------------------------
# Report / regression gate
# ----------------------------------------------------------------------
def measure(quick: bool, repeat: int) -> dict:
    from repro.sim import DEFAULT_SCHEDULER

    events = 100_000 if quick else 400_000
    duration_us, warmup_us = (400, 100) if quick else (1200, 300)
    engine = bench_engine(events)
    per_scheduler = {name: bench_engine(events, name)
                     for name in ("heap", "wheel")}
    fig08 = bench_fig08_probe(repeat)
    fig09 = bench_fig09(repeat, duration_us, warmup_us)
    repl = bench_replication(repeat)
    crash = bench_crash_prune(repeat)
    vec_env = vector.describe()
    report = {
        "mode": "quick" if quick else "full",
        "host_cpus": os.cpu_count() or 1,
        "scheduler": DEFAULT_SCHEDULER,
        # Wall clocks are only comparable across entries measured in
        # the same interpreter/kernel configuration; record it.
        "environment": {
            "python": _platform.python_version(),
            "numpy": vec_env["numpy"],
            "vector_enabled": vec_env["enabled"],
            "vector_kill_switch": vec_env["kill_switch"],
        },
        "vector_kernels": bench_vector_kernels(repeat),
        "engine": engine,
        "engine_by_scheduler": {
            name: {"events_per_sec": r["events_per_sec"],
                   "wall_s": r["wall_s"]}
            for name, r in per_scheduler.items()},
        "figures": {
            "fig08_probe": fig08,
            "fig09_sweep_serial": fig09["fig09_sweep_serial"],
            "fig09_sweep_fast": fig09["fig09_sweep_fast"],
            "replication": repl,
            "crash_prune": crash,
        },
        "fig09_points": fig09["points"],
        "speedup_fast_vs_serial": fig09["speedup_fast_vs_serial"],
    }
    if not quick:
        report["baseline_pre_pr_fig09_serial_wall_s"] = \
            PRE_PR_FIG09_SERIAL_WALL_S
        report["speedup_vs_pre_pr"] = round(
            PRE_PR_FIG09_SERIAL_WALL_S
            / fig09["fig09_sweep_fast"]["wall_s"], 3)
    return report


def load_entries(path: str) -> list:
    """The benchmark trajectory at ``path`` (oldest first).

    Accepts both the current ``{"entries": [...]}`` layout and the
    legacy single-report file, which becomes the first entry.
    """
    try:
        with open(path) as f:
            data = json.load(f)
    except FileNotFoundError:
        return []
    if isinstance(data, dict) and "entries" in data:
        return list(data["entries"])
    if isinstance(data, dict) and data:
        data.setdefault("label", "pre-trajectory")
        return [data]
    return []


def check(report: dict, baseline_path: str) -> int:
    """Exit status for the CI gate: 1 on a >REGRESSION_MAX regression
    against the committed trajectory's latest entry."""
    entries = load_entries(baseline_path)
    if not entries:
        print(f"check: no committed baseline at {baseline_path}; skipping")
        return 0
    baseline = entries[-1]
    # The committed trajectory must be measured with the vectorised
    # data plane on (entries predating the vector switchboard carry no
    # environment block and are exempt); a fresh --check run on a
    # numpy-capable host must not silently gate in reference mode.
    env = baseline.get("environment")
    if env is not None and not env.get("vector_enabled"):
        print("check: FAIL committed baseline entry "
              f"{baseline.get('label')!r} was measured with "
              "vectorisation disabled")
        return 1
    if vector.HAVE_NUMPY and not report["environment"]["vector_enabled"]:
        print("check: FAIL numpy is available but vectorisation is "
              "disabled (REPRO_VECTOR?); the perf gate must measure "
              "the vectorised data plane")
        return 1
    if baseline.get("mode") != report["mode"]:
        # Wall times are only comparable at the same sweep size: scale
        # the gate off the freshly measured serial/fast ratio instead.
        ratio = report["speedup_fast_vs_serial"]
        if ratio * REGRESSION_MAX < 1.0:
            print(f"check: FAIL fast sweep is {1 / ratio:.2f}x slower "
                  f"than serial (mode mismatch vs baseline "
                  f"{baseline.get('mode')!r})")
            return 1
        print(f"check: baseline mode {baseline.get('mode')!r} != "
              f"{report['mode']!r}; fast-vs-serial ratio {ratio:.2f} ok")
        return 0
    failures = []
    for name in ("fig08_probe", "fig09_sweep_serial", "fig09_sweep_fast",
                 "replication", "crash_prune"):
        base = baseline.get("figures", {}).get(name, {}).get("wall_s")
        new = report["figures"][name]["wall_s"]
        if base and new > base * REGRESSION_MAX:
            failures.append(f"{name}: {new:.3f}s vs baseline {base:.3f}s "
                            f"(> {REGRESSION_MAX}x)")
    base_eps = baseline.get("engine", {}).get("events_per_sec")
    new_eps = report["engine"]["events_per_sec"]
    if base_eps and new_eps * REGRESSION_MAX < base_eps:
        failures.append(f"engine: {new_eps} events/s vs baseline "
                        f"{base_eps} (> {REGRESSION_MAX}x slower)")
    for line in failures:
        print(f"check: FAIL {line}")
    if not failures:
        print(f"check: ok (no metric regressed by > {REGRESSION_MAX}x)")
    return 1 if failures else 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI-sized run (smaller sweeps, same structure)")
    ap.add_argument("--check", action="store_true",
                    help=f"fail on a >{REGRESSION_MAX}x wall-clock "
                         f"regression vs the committed baseline")
    ap.add_argument("--repeat", type=int, default=2,
                    help="timings are best-of-N (default 2)")
    ap.add_argument("--label", default="dev",
                    help="trajectory entry label, e.g. pr9 (default dev)")
    ap.add_argument("--out", default=None,
                    help=f"append the report here (default {DEFAULT_OUT}; "
                         f"with --check the default is to not write)")
    args = ap.parse_args(argv)

    report = measure(args.quick, args.repeat)
    report["label"] = args.label
    print(json.dumps(report, indent=1, sort_keys=True))
    status = 0
    if args.check:
        status = check(report, DEFAULT_OUT)
    out = args.out
    if out is None and not args.check:
        out = DEFAULT_OUT
    if out:
        entries = load_entries(out)
        # Re-measuring under an existing label replaces that entry
        # (keeps one entry per PR however often the harness reruns).
        entries = [e for e in entries if e.get("label") != args.label]
        entries.append(report)
        with open(out, "w") as f:
            json.dump({"entries": entries}, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"wrote {out} ({len(entries)} entries, newest "
              f"{args.label!r})")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
