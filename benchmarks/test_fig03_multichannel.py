"""Figure 3: bandwidth with a varying number of DMA channels.

Paper: 16 cores submit concurrently.  Writes: 4 KB peaks around 4
channels, then degrades; larger I/O degrades (near-)monotonically as
channels are added.  Reads: never decline, peak at 2-4 channels for
larger I/O.
"""

from benchmarks.conftest import run_once, show
from repro.analysis.report import banner, fmt_series
from repro.workloads.hwbench import measure_copy_bandwidth

CHANNELS = [1, 2, 4, 6, 8]
SIZES = [4096, 16384, 65536]


def reproduce():
    series = {}
    for write in (True, False):
        d = "write" if write else "read"
        for size in SIZES:
            series[f"{d}/{size // 1024}K"] = [
                measure_copy_bandwidth("dma", write, cores=16, io_size=size,
                                       channels=ch).bandwidth_gbps
                for ch in CHANNELS]
    return series


def test_fig03_multichannel_bandwidth(benchmark):
    s = run_once(benchmark, reproduce)
    show(banner("Figure 3: bandwidth vs #channels (GB/s), 16 cores"))
    for name in sorted(s):
        show(fmt_series(name, CHANNELS, s[name]))

    # Writes: more channels is NOT always beneficial.
    for size in SIZES:
        w = s[f"write/{size // 1024}K"]
        assert w[-1] < max(w), \
            f"write {size}: 8 channels should underperform the peak"
    # 4 KB writes need a few channels to peak (per-descriptor overhead).
    w4 = s["write/4K"]
    peak_at = CHANNELS[w4.index(max(w4))]
    assert peak_at >= 2, "4K writes should peak beyond one channel"
    # 64 KB writes: one channel is already at/near the optimum.
    w64 = s["write/64K"]
    assert w64[0] >= 0.9 * max(w64)
    # Reads never decline appreciably and peak by ~2-4 channels.
    for size in SIZES:
        r = s[f"read/{size // 1024}K"]
        assert r[-1] >= 0.93 * max(r), f"read {size} must not decline"
    r64 = s["read/64K"]
    assert r64[CHANNELS.index(4)] >= 0.95 * max(r64)
