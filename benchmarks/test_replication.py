"""Replication robustness: goodput and failover under seeded faults.

Not a figure from the paper -- a robustness claim the artifact adds on
top of it.  A replicated EasyIO-style log (primary/backup shipping in
SN order, ack after quorum, lease-based failover) is swept across
cluster shapes x network fault plans:

* **clean**: every write acks, one lease epoch, goodput 1.0;
* **primary crash**: the lease lapses, a caught-up backup takes over
  within the cluster's failover budget, and the rebooted old primary
  rejoins as a backup (its unreplicated suffix amended away);
* **partition + heal**: the majority side elects a new primary; the
  isolated old one degrades read-only and never acks un-replicated
  writes;
* **message loss**: drops/dups/delays cost retransmits, never acks.

Every run is traced and replayed through the cluster oracles
(ack-implies-quorum-durable, per-replica SN monotonicity, one primary
per lease epoch): **zero violations** across the whole sweep.  Each
cell is a pure function of its seed -- the identical re-run at the
bottom pins replayability.
"""

from benchmarks.conftest import run_once, show
from repro.analysis.report import banner, fmt_table
from repro.net import NodeCrashFault, PartitionFault
from repro.workloads.replication import (
    CLUSTER_ORACLES,
    ReplicationConfig,
    run_replication,
)

SEED = 42
WRITES = 12
CLIENTS = 2

#: (label, extra ReplicationConfig fields) -- the fault-plan axis.
SCENARIOS = (
    ("clean", {}),
    ("crash", {"schedule": (NodeCrashFault(0, at_ns=2_000_000,
                                           down_ns=15_000_000),)}),
    ("partition", {"schedule": (PartitionFault(start_ns=2_000_000,
                                               duration_ns=12_000_000,
                                               group=(0,)),)}),
    ("loss", {"p_drop": 0.10, "p_dup": 0.05, "p_delay": 0.05,
              "max_faults": 300}),
)

#: (n_nodes, quorum) -- the cluster-shape axis (None = majority).
SHAPES = ((3, None), (3, 3), (5, None))


def _cfg(n, quorum, extra):
    return ReplicationConfig(n_nodes=n, quorum=quorum, n_clients=CLIENTS,
                             writes_per_client=WRITES, seed=SEED, **extra)


def reproduce():
    out = {}
    for n, quorum in SHAPES:
        for label, extra in SCENARIOS:
            out[(n, quorum, label)] = run_replication(_cfg(n, quorum, extra))
    # Replayability pin: the crash cell, re-run bit-for-bit.
    out["replay"] = run_replication(_cfg(3, None, dict(SCENARIOS[1][1])))
    return out


def test_replication(benchmark):
    out = run_once(benchmark, reproduce)

    show(banner(f"Replicated log shipping: {CLIENTS} clients x {WRITES} "
                f"writes, seed {SEED}"))
    rows = []
    for (n, quorum, label), r in ((k, v) for k, v in out.items()
                                  if isinstance(k, tuple)):
        fo = (max(r.failover_times_ns) // 1000
              if r.failover_times_ns else "-")
        rows.append([f"{n}/{quorum or (n // 2 + 1)}", label, r.offered,
                     r.acked, f"{r.goodput:.2f}",
                     f"{r.goodput_ops_per_sec / 1000:.1f}k",
                     len(r.lease_log), fo, r.stats.retransmits,
                     len(r.violations)])
    show(fmt_table(["nodes/q", "faults", "offered", "acked", "goodput",
                    "ops/s", "epochs", "failover us", "retx", "viol"],
                   rows))
    show(f"oracles checked per run: {', '.join(CLUSTER_ORACLES)}")

    for (n, quorum, label), r in ((k, v) for k, v in out.items()
                                  if isinstance(k, tuple)):
        cell = f"{n}/{quorum}/{label}"
        # The headline: every cell drains every write, and the traced
        # run replays clean through the oracle checker.
        assert r.drained, f"{cell}: clients never drained"
        assert r.goodput == 1.0, f"{cell}: lost writes"
        assert r.violations == [], f"{cell}: {r.violations}"
        if label == "clean":
            assert len(r.lease_log) == 1, f"{cell}: spurious failover"
        if label in ("crash", "partition"):
            assert r.failover_times_ns, f"{cell}: no failover recorded"
        if label == "loss":
            assert r.stats.dropped_fault > 0, f"{cell}: plan never bit"
            assert r.stats.retransmits > 0, f"{cell}: no retransmits"

    # Triggered failovers land within the lease-derived budget.  (Loss
    # cells may fail over too -- dropped renewals -- but there the
    # "trigger" is the previous grant, not a discrete fault, so the
    # trigger-to-grant delay is not a bounded recovery latency.)
    from repro.net import Cluster
    from repro.sim import Engine
    for (n, quorum, label), r in ((k, v) for k, v in out.items()
                                  if isinstance(k, tuple)):
        if label not in ("crash", "partition"):
            continue
        budget = Cluster(Engine(), n=n, quorum=quorum).failover_budget_ns
        if (quorum or n // 2 + 1) > n - 1:
            # Quorum = n: no election can form while one node is out,
            # so recovery necessarily waits out the outage first.
            budget += 15_000_000
        for t in r.failover_times_ns:
            assert t <= budget, \
                f"{n}/{quorum}/{label}: failover {t} > budget {budget}"

    # Replayable by seed: the crash cell reproduces exactly.
    a, b = out[(3, None, "crash")], out["replay"]

    def key(r):
        return (r.offered, r.acked, r.lease_log, r.failover_times_ns,
                r.elapsed_ns, r.stats.as_dict())
    assert key(a) == key(b), "same seed must replay identically"
