"""Figure 8: single-thread read/write latency across filesystems.

Paper: EasyIO achieves the lowest latency for both operations (~22 %
below NOVA on average); NOVA-DMA is similar to EasyIO for reads; the
latency advantage grows with I/O size (up to ~41 % at 64 KB writes);
and EasyIO-CPU (the CPU time actually spent) is a small fraction of
the operation -- the harvestable cycles.
"""

from benchmarks.conftest import run_once, show
from repro.analysis.report import banner, fmt_table
from repro.workloads import measure_single_op

SIZES = [4096, 8192, 16384, 32768, 65536]
KINDS = ["nova", "nova-dma", "odinfs", "easyio"]


def reproduce():
    data = {}
    for op in ("write", "read"):
        for kind in KINDS:
            for size in SIZES:
                lat, cpu, _bd = measure_single_op(kind, op, size)
                data[(op, kind, size)] = (lat, cpu)
    return data


def test_fig08_single_thread_latency(benchmark):
    d = run_once(benchmark, reproduce)
    for op in ("write", "read"):
        show(banner(f"Figure 8: single-thread {op} latency (us)"))
        rows = []
        for kind in KINDS:
            rows.append([kind] + [d[(op, kind, s)][0] / 1000 for s in SIZES])
        rows.append(["EasyIO-CPU"]
                    + [d[(op, "easyio", s)][1] / 1000 for s in SIZES])
        show(fmt_table(["fs"] + [f"{s // 1024}K" for s in SIZES], rows))

    def lat(op, kind, size):
        return d[(op, kind, size)][0]

    # EasyIO has the lowest latency for both ops at every size.
    for op in ("write", "read"):
        for size in SIZES:
            easy = lat(op, "easyio", size)
            for other in ("nova", "nova-dma", "odinfs"):
                assert easy <= lat(op, other, size) * 1.02, \
                    f"{op}/{size}: EasyIO not lowest vs {other}"
    # Average reduction vs NOVA in the paper's ballpark (>= 10 %).
    for op in ("write", "read"):
        reduction = sum(1 - lat(op, "easyio", s) / lat(op, "nova", s)
                        for s in SIZES) / len(SIZES)
        assert reduction > 0.10, f"{op}: mean reduction {reduction:.0%}"
    # The write advantage grows with I/O size and is largest at 64 KB.
    gains = [1 - lat("write", "easyio", s) / lat("write", "nova", s)
             for s in SIZES]
    assert gains[-1] == max(gains)
    assert gains[-1] > 0.15
    # EasyIO-CPU is a small fraction at 64 KB (cycles are harvested).
    w_lat, w_cpu = d[("write", "easyio", 65536)]
    r_lat, r_cpu = d[("read", "easyio", 65536)]
    assert w_cpu / w_lat < 0.45
    assert r_cpu / r_lat < 0.45
    # 4 KB ops bypass the DMA engine entirely (selective offload):
    # EasyIO-CPU equals the full latency there.
    lat4, cpu4 = d[("write", "easyio", 4096)]
    assert cpu4 == lat4
