"""Figure 2: memcpy vs on-chip DMA bandwidth (one channel, 3 DIMMs).

Paper conclusions reproduced:
 ①  DMA saturates write bandwidth with one core; memcpy needs several.
 ②  DMA reads peak far (~63 %) below memcpy reads.
 ③  DMA loses to memcpy at 4 KB even with batching.
 ④  memcpy write bandwidth declines as cores grow; DMA's does not.
"""

from benchmarks.conftest import run_once, show
from repro.analysis.report import banner, fmt_series
from repro.workloads.hwbench import measure_copy_bandwidth

CORES = [1, 2, 4, 8, 16]


def reproduce():
    series = {}
    for write in (True, False):
        d = "write" if write else "read"
        series[f"{d}/memcpy-4K"] = [
            measure_copy_bandwidth("memcpy", write, c, 4096).bandwidth_gbps
            for c in CORES]
        for size in (4096, 16384, 65536):
            for batch, tag in ((1, "NB"), (4, "B")):
                key = f"{d}/DMA-{size // 1024}K-{tag}"
                series[key] = [
                    measure_copy_bandwidth("dma", write, c, size,
                                           batch=batch).bandwidth_gbps
                    for c in CORES]
    return series


def test_fig02_dma_vs_memcpy_bandwidth(benchmark):
    s = run_once(benchmark, reproduce)
    show(banner("Figure 2: memcpy vs DMA bandwidth (GB/s), 1 channel"))
    for name in sorted(s):
        show(fmt_series(name, CORES, s[name]))

    # ① One-core DMA write beats one-core memcpy write and reaches
    #    >=85 % of its own multi-core ceiling.
    assert s["write/DMA-64K-B"][0] > s["write/memcpy-4K"][0]
    assert s["write/DMA-64K-B"][0] > 0.85 * max(s["write/DMA-64K-B"])
    # ② DMA reads peak well below memcpy reads.
    assert max(s["read/DMA-64K-B"]) < 0.6 * max(s["read/memcpy-4K"])
    # ③ 4 KB: DMA (even batched) below the memcpy peak.
    assert max(s["write/DMA-4K-B"]) < max(s["write/memcpy-4K"])
    # ④ memcpy write declines beyond its peak; DMA write does not.
    mw = s["write/memcpy-4K"]
    assert mw[-1] < max(mw) * 0.75, "memcpy write must collapse at 16 cores"
    dw = s["write/DMA-64K-B"]
    assert dw[-1] >= max(dw) * 0.95, "DMA write must stay flat"
    # memcpy read scales up with cores.
    mr = s["read/memcpy-4K"]
    assert mr[-1] == max(mr)
