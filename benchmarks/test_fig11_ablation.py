"""Figure 11: effectiveness of orderless file operation and two-level
locking (EasyIO vs the Naive strictly-ordered ablation).

Paper, left panel: orderless operation cuts single-thread write latency
~18 % on average, with the gap growing with I/O size (at 4 KB both use
memcpy and match).

Paper, right panel: under DWOM lock contention (one shared file, one
FxMark uthread + one compute uthread per core, stealing off), EasyIO's
two-level locking yields ~66 % more throughput at 2 cores, and both
decline as cores (writers racing for the lock) increase.

Bonus: the §3 deadlock is real -- colocating two Naive DWOM uthreads
on one core deadlocks, which is why the paper's setup avoids it.
"""

import pytest

from benchmarks.conftest import run_once, show
from repro.analysis.report import banner, fmt_table
from repro.workloads import FxmarkConfig, measure_single_op, run_fxmark

SIZES = [4096, 8192, 16384, 32768, 65536]
CORES = [2, 4, 6, 8]


def reproduce():
    latency = {kind: [measure_single_op(kind, "write", s)[0] for s in SIZES]
               for kind in ("easyio", "naive")}
    dwom = {}
    for kind in ("easyio", "naive"):
        dwom[kind] = []
        for cores in CORES:
            r = run_fxmark(FxmarkConfig(
                kind=kind, op="write", io_size=16384, workers=cores,
                shared=True, duration_us=1500, warmup_us=400,
                uthreads_per_core=1, compute_uthreads_per_core=1,
                steal=False))
            dwom[kind].append(r.throughput_ops)
    # The §3 deadlock demonstration.
    deadlocked = False
    try:
        run_fxmark(FxmarkConfig(kind="naive", op="write", io_size=16384,
                                workers=2, shared=True, duration_us=400,
                                warmup_us=100, uthreads_per_core=2,
                                steal=False))
    except RuntimeError:
        deadlocked = True
    return latency, dwom, deadlocked


def test_fig11_orderless_and_two_level_locking(benchmark):
    latency, dwom, deadlocked = run_once(benchmark, reproduce)

    show(banner("Figure 11 (left): write latency, EasyIO vs Naive (us)"))
    show(fmt_table(["fs"] + [f"{s // 1024}K" for s in SIZES],
                   [[k] + [v / 1000 for v in vals]
                    for k, vals in latency.items()]))
    show(banner("Figure 11 (right): DWOM throughput under contention"))
    show(fmt_table(["fs"] + [f"{c}c" for c in CORES],
                   [[k] + [f"{v / 1000:.1f}k" for v in vals]
                    for k, vals in dwom.items()]))

    easy, naive = latency["easyio"], latency["naive"]
    # Orderless operation lowers latency at every offloaded size...
    for i, size in enumerate(SIZES):
        if size > 4096:
            assert easy[i] < naive[i], f"{size}: orderless not faster"
    # ...about 18 % on average in the paper (we accept >= 10 %)...
    mean_gain = sum(1 - e / n for e, n in zip(easy, naive)) / len(SIZES)
    show(f"mean orderless latency reduction: {mean_gain:.0%} (paper ~18%)")
    assert mean_gain >= 0.10
    # ...with the absolute gap growing with I/O size...
    gaps = [n - e for e, n in zip(easy, naive)]
    assert gaps[-1] == max(gaps)
    # ...and no gap at 4 KB (both use memcpy).
    assert easy[0] == pytest.approx(naive[0], rel=0.02)

    # Two-level locking: ~66 % more throughput at 2 cores (>= 40 %).
    boost = dwom["easyio"][0] / dwom["naive"][0] - 1
    show(f"two-level locking throughput boost at 2 cores: "
         f"{boost:.0%} (paper ~66%)")
    assert boost >= 0.40
    # Both decline as writers race for the shared lock.
    assert dwom["naive"][-1] < dwom["naive"][0]
    assert dwom["easyio"][-1] < dwom["easyio"][0]
    # EasyIO leads at every core count.
    for e, n in zip(dwom["easyio"], dwom["naive"]):
        assert e > n

    assert deadlocked, "the §3 deadlock should reproduce with 2 Naive " \
                       "DWOM uthreads per core"
