"""Table 2: crash-consistency test results with CrashMonkey.

Paper: four workloads covering the error-prone syscalls (create, write,
link, rename, delete), 1000 crash points each -- EasyIO passes all of
them, because (i) SNs in block mappings + CoW let recovery discard
unfinished-DMA mappings, (ii) two-level locking preserves concurrency
consistency, and (iii) the runtime never resumes a uthread whose DMA
is unfinished.
"""

from benchmarks.conftest import run_once, show
from repro.analysis.report import banner, fmt_table
from repro.crash import CRASH_WORKLOADS, run_crash_test

CRASH_POINTS = 1000


def reproduce():
    # trace_oracles: the recording run of every workload is traced and
    # replayed through the invariant oracles (ack-implies-durable, SN
    # monotonicity, ...) before the crash points are examined.
    return {workload: run_crash_test("easyio", workload,
                                     crash_points=CRASH_POINTS,
                                     trace_oracles=True)
            for workload in sorted(CRASH_WORKLOADS)}


def test_tab02_crash_consistency(benchmark):
    reports = run_once(benchmark, reproduce)
    show(banner("Table 2: crash consistency with CrashMonkey (EasyIO)"))
    rows = []
    for workload, report in reports.items():
        desc = CRASH_WORKLOADS[workload][0]
        rows.append([workload, desc, report.total_crash_points,
                     report.passed])
    show(fmt_table(["workload", "description", "crash points", "passed"],
                   rows))
    for workload, report in reports.items():
        assert report.all_passed, \
            f"{workload}: {len(report.failures)} failures, " \
            f"e.g. {report.failures[:3]}"
        # The paper runs 1000 points per workload; our mutation logs
        # must be dense enough to give (close to) that many.
        assert report.total_crash_points >= 900
