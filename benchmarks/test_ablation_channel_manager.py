"""Design-choice ablations for the channel manager (§4.4), beyond the
paper's own Figure-11 ablations:

* **Read admission control** -- EasyIO shunts reads to memcpy once every
  L channel is >= 2 deep (Listing 2).  Disabling the shunt (always-DMA,
  i.e. the NOVA-DMA read policy) caps aggregate read throughput near
  the DMA-read ceiling, well below EasyIO's mixed path.
* **Bulk splitting** -- B-app I/O is split into 64 KB descriptors so a
  CHANCMD suspension never has a huge transfer in flight.  Without
  splitting, an in-flight 2 MB descriptor always runs to completion,
  so the token-bucket limit overshoots badly.
"""

from benchmarks.conftest import run_once, show
from repro.analysis.report import banner, fmt_table
from repro.core.channel_manager import ChannelManager
from repro.workloads import FxmarkConfig, run_fxmark
from repro.workloads.factory import make_platform


def throttled_bulk_rate(split_bytes, limit=0.5, duration_us=600):
    """Achieved B-app bandwidth against a token-bucket limit, with bulk
    I/O split at ``split_bytes`` (2 MB = effectively unsplit)."""
    from repro.hw.dma import DmaDescriptor
    platform = make_platform()
    cm = ChannelManager(platform, b_limit=limit, epoch_ns=10_000,
                        split_bytes=split_bytes)
    cm.start_throttling()
    engine = platform.engine
    t_end = engine.now + duration_us * 1000

    def bulk():
        ch = cm.b_channel
        while engine.now < t_end:
            sizes = ([split_bytes] * ((2 << 20) // split_bytes)
                     if split_bytes < (2 << 20) else [2 << 20])
            for i in range(0, len(sizes), 8):
                descs = [DmaDescriptor(sz, write=True)
                         for sz in sizes[i:i + 8]]
                yield from ch.submit(descs)
                for d in descs:
                    yield d.done
    engine.process(bulk())
    engine.run(until=t_end)
    in_window = cm.b_channel.bytes_moved
    cm.stop()
    engine.run()
    return in_window / (duration_us * 1000)


def read_throughput(kind):
    r = run_fxmark(FxmarkConfig(kind=kind, op="read", io_size=65536,
                                workers=16, duration_us=1200,
                                warmup_us=300))
    return r.throughput_ops


def reproduce():
    return {
        "rate_split": throttled_bulk_rate(64 * 1024),
        "rate_unsplit": throttled_bulk_rate(2 << 20),
        # NOVA-DMA *is* the no-admission-control read policy.
        "read_tp_easyio": read_throughput("easyio"),
        "read_tp_always_dma": read_throughput("nova-dma"),
    }


def test_ablation_selective_offload_and_admission(benchmark):
    d = run_once(benchmark, reproduce)
    show(banner("Ablation: selective offloading / read admission control"))
    show(fmt_table(["configuration", "value"], [
        ["bulk under 0.5 GB/s limit, 64K split (GB/s)", d["rate_split"]],
        ["bulk under 0.5 GB/s limit, unsplit 2MB (GB/s)",
         d["rate_unsplit"]],
        ["16-core 64K read, admission control (kops/s)",
         d["read_tp_easyio"] / 1000],
        ["16-core 64K read, always-DMA (kops/s)",
         d["read_tp_always_dma"] / 1000],
    ]))
    # Splitting keeps the achieved rate near the limit; unsplit bulk
    # overshoots (an in-flight 2 MB descriptor cannot be suspended).
    assert d["rate_split"] < 1.8 * 0.5, "split bulk overshoots the limit"
    assert d["rate_unsplit"] > 1.5 * d["rate_split"], \
        "unsplit bulk should overshoot far more than split bulk"
    # Shunting overloaded reads to memcpy buys aggregate bandwidth.
    assert d["read_tp_easyio"] > 1.5 * d["read_tp_always_dma"], \
        "admission control should beat always-DMA reads"
