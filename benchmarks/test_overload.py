"""Overload robustness: admission control vs open-loop queue blow-up.

Not a figure from the paper -- a robustness claim the artifact adds on
top of it.  An open-loop Poisson arrival stream at ~3x the data path's
capacity drives the EasyIO runtime four ways:

* **unprotected** (no deadlines, no admission): every request eventually
  completes, but the run queue and p99 latency grow with the length of
  the burst -- the classic open-loop collapse;
* **deadline-only**: per-request deadlines bound p99 (late requests die
  with ``DeadlineExceeded``), but only *after* wasting queue time, so
  goodput is poor;
* **admission (reject)**: a queue-depth gate turns the excess away at
  the syscall boundary while it is still cheap -- backlog stays near
  the configured bound, completed requests keep a tight p99, and
  goodput *beats* the deadline-only run;
* **admission (shed)**: same, but priority-aware -- high-priority
  requests ride through the overload.

The whole experiment is deterministic (seeded arrivals, simulated
clock): an identical re-run must reproduce identical counts.
"""

from benchmarks.conftest import run_once, show
from repro.analysis.report import banner, fmt_counters, fmt_table
from repro.workloads.overload import OverloadConfig, run_overload

RATE = 600_000          # offered load, ops/s (~3x capacity of 2 cores)
DURATION_US = 2000
DEADLINE_US = 300
MAX_QDEPTH = 16
SEED = 42


def _cfg(**kw):
    base = dict(arrival_rate_ops_per_sec=RATE, duration_us=DURATION_US,
                seed=SEED)
    base.update(kw)
    return OverloadConfig(**base)


def reproduce():
    return {
        "unprotected": run_overload(_cfg(deadline_us=None)),
        "deadline": run_overload(_cfg(deadline_us=DEADLINE_US)),
        "admit": run_overload(_cfg(deadline_us=DEADLINE_US,
                                   admission_policy="reject",
                                   max_queue_depth=MAX_QDEPTH,
                                   watchdog=True)),
        "admit2": run_overload(_cfg(deadline_us=DEADLINE_US,
                                    admission_policy="reject",
                                    max_queue_depth=MAX_QDEPTH,
                                    watchdog=True)),
        "shed": run_overload(_cfg(deadline_us=DEADLINE_US,
                                  admission_policy="shed",
                                  max_queue_depth=MAX_QDEPTH,
                                  priority_fraction=0.2)),
    }


def test_overload(benchmark):
    out = run_once(benchmark, reproduce)
    unprot, dl, admit, admit2, shed = (
        out["unprotected"], out["deadline"], out["admit"], out["admit2"],
        out["shed"])

    show(banner(f"Open-loop overload: {RATE/1000:.0f}k ops/s offered on "
                f"{unprot.config.cores} cores for {DURATION_US} us"))
    rows = []
    for name, r in (("unprotected", unprot), ("deadline-only", dl),
                    ("admission/reject", admit), ("admission/shed", shed)):
        rows.append([name, r.offered, r.completed, r.rejected,
                     r.deadline_missed, r.queue_high_water,
                     f"{r.p99_us:.0f}", f"{r.goodput:.2f}",
                     f"{r.drain_ns // 1000}"])
    show(fmt_table(["config", "offered", "done", "rej", "miss",
                    "queue hw", "p99 us", "goodput", "drain us"], rows))
    show(fmt_counters("admission/reject counters", admit.stats))

    # Open-loop collapse: the unprotected run's backlog and p99 blow up.
    assert unprot.completed == unprot.offered
    assert unprot.queue_high_water > 5 * admit.queue_high_water
    assert unprot.p99_us > 5 * admit.p99_us

    # Deadlines alone bound p99 (within one parked-completion of the
    # budget) but waste queue time before giving up.
    assert dl.deadline_missed > 0
    assert dl.p99_us < DEADLINE_US + 100
    assert dl.stats.deadline_misses == dl.deadline_missed

    # Admission keeps backlog near the configured bound and turns the
    # excess into fast failures -- beating deadline-only goodput.
    assert admit.queue_high_water <= 2 * MAX_QDEPTH
    assert admit.rejected > 0
    assert admit.goodput > dl.goodput
    assert admit.p99_us < dl.p99_us
    # Mechanism-side counters agree with what the requests observed.
    assert admit.stats.rejected == admit.rejected
    assert admit.stats.admitted == admit.completed + admit.deadline_missed
    # A healthy protected run never trips the hang watchdog.
    assert admit.stats.watchdog_trips == 0 and not admit.hang_reports

    # Priority-aware shedding behaves like reject for the masses.
    assert shed.stats.shed > 0 and shed.completed > 0
    assert shed.queue_high_water <= 2 * MAX_QDEPTH

    # Determinism: the same seed reproduces the run exactly.
    for field in ("offered", "completed", "rejected", "deadline_missed",
                  "queue_high_water"):
        assert getattr(admit, field) == getattr(admit2, field), field
    assert admit.p99_us == admit2.p99_us
