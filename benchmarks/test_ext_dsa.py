"""Extension experiment: EasyIO on a DSA-class engine (§5 future work).

The paper closes by predicting that DSA -- cheaper descriptors via
shared virtual memory, much better read throughput -- will "further
expand EasyIO's benefit": more traffic can be diverted to the engine,
freeing more CPU cycles, and the read-latency penalty shrinks.

This experiment swaps the calibrated I/OAT model for
:meth:`repro.hw.params.CostModel.dsa` and re-runs the headline
comparisons.  Expectations checked:

* single-thread write/read latency drops further below NOVA;
* the EasyIO-CPU share shrinks (more cycles harvested);
* high-load read throughput rises, because fewer reads must be
  shunted to memcpy (the DMA-read ceiling is no longer the wall).
"""

from benchmarks.conftest import run_once, show
from repro.analysis.report import banner, fmt_table
from repro.hw.params import CostModel
from repro.workloads import FxmarkConfig, measure_single_op, run_fxmark

DSA = CostModel.dsa()


def reproduce():
    out = {}
    for label, model in (("ioat", None), ("dsa", DSA)):
        for op in ("write", "read"):
            for size in (16384, 65536):
                lat, cpu, _bd = measure_single_op("easyio", op, size,
                                                  model=model)
                out[(label, op, size)] = (lat, cpu)
        r = run_fxmark(FxmarkConfig(kind="easyio", op="read",
                                    io_size=65536, workers=4,
                                    duration_us=1200, warmup_us=300,
                                    model=model))
        out[(label, "read-tp")] = r.throughput_ops
        out[(label, "read-cpu-op")] = \
            r.cpu_busy_fraction * 4 / r.throughput_ops * 1e9
    lat_nova, _c, _b = measure_single_op("nova", "write", 65536)
    out["nova-write-64k"] = lat_nova
    return out


def test_ext_easyio_on_dsa(benchmark):
    d = run_once(benchmark, reproduce)
    show(banner("Extension: EasyIO on DSA vs I/OAT (§5 future work)"))
    rows = []
    for op in ("write", "read"):
        for size in (16384, 65536):
            io_lat, io_cpu = d[("ioat", op, size)]
            ds_lat, ds_cpu = d[("dsa", op, size)]
            rows.append([f"{op} {size // 1024}K",
                         io_lat / 1000, ds_lat / 1000,
                         f"{io_cpu / io_lat:.0%}", f"{ds_cpu / ds_lat:.0%}"])
    show(fmt_table(["op", "I/OAT lat us", "DSA lat us",
                    "I/OAT CPU%", "DSA CPU%"], rows))
    show(f"4-core 64K read: "
         f"I/OAT {d[('ioat', 'read-tp')] / 1000:.0f} kops/s at "
         f"{d[('ioat', 'read-cpu-op')] / 1000:.2f} us CPU/op -> "
         f"DSA {d[('dsa', 'read-tp')] / 1000:.0f} kops/s at "
         f"{d[('dsa', 'read-cpu-op')] / 1000:.2f} us CPU/op")

    # Latency improves across the board on DSA.
    for op in ("write", "read"):
        for size in (16384, 65536):
            assert d[("dsa", op, size)][0] < d[("ioat", op, size)][0]
    # Absolute CPU cost per op drops (SVM kills the prep cost).
    io_lat, io_cpu = d[("ioat", "write", 65536)]
    ds_lat, ds_cpu = d[("dsa", "write", 65536)]
    assert ds_cpu < io_cpu
    # DSA reads: the lifted ceiling turns directly into throughput at
    # low/mid concurrency, at no extra CPU per op.
    assert d[("dsa", "read-tp")] > 1.25 * d[("ioat", "read-tp")]
    assert d[("dsa", "read-cpu-op")] <= 1.02 * d[("ioat", "read-cpu-op")]
    # And EasyIO-on-DSA beats NOVA by a wider margin than on I/OAT.
    assert ds_lat < io_lat < d["nova-write-64k"]
