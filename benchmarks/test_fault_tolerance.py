"""Fault tolerance: EasyIO under injected DMA/PM faults.

Not a figure from the paper -- a robustness claim the artifact adds on
top of it: under transfer errors, CHANERR channel halts, media faults,
and transient bandwidth loss, EasyIO completes **every** I/O with zero
data loss (read-back equals written bytes) via bounded retry, SN-safe
channel failover, and graceful degradation to memcpy; and CrashMonkey
still passes 1000/1000 crash points when the crash points land inside
the retry/failover windows.
"""

from benchmarks.conftest import run_once, show
from repro.analysis.report import banner, fmt_table
from repro.crash import CRASH_WORKLOADS, run_crash_test
from repro.faults import ChannelHaltFault, FaultPlan, TransferErrorFault
from repro.hw.platform import Platform, PlatformConfig
from repro.workloads.factory import make_fs

CRASH_POINTS = 1000
FILES = 4
WRITES_PER_FILE = 12
NBYTES = 256 * 1024


def _payload(tag: int, nbytes: int) -> bytes:
    return (f"{tag:08x}".encode() * ((nbytes // 8) + 1))[:nbytes]


def _run_workload(plan_kwargs, fault_tolerant=None, stop_cm=False):
    """Concurrent multi-file write workload + full read-back check.

    Returns (fs, plan, makespan_ns, completed_ops).
    """
    platform = Platform(PlatformConfig.single_node())
    fs = make_fs("easyio", platform, fault_tolerant=fault_tolerant)
    plan = FaultPlan(**plan_kwargs)
    plan.install(platform, image=fs.image)
    completed = []

    def writer(fidx: int, ino: int):
        for i in range(WRITES_PER_FILE):
            tag = fidx * WRITES_PER_FILE + i
            r = yield from fs.write(fs.context(record=False), ino,
                                    i * NBYTES, NBYTES, _payload(tag, NBYTES))
            assert r.value == NBYTES
            if r.is_async:
                yield r.pending
            completed.append(tag)

    def main():
        inos = []
        for fidx in range(FILES):
            ino = yield from fs.create(fs.context(record=False), f"/f{fidx}")
            inos.append(ino)
        procs = [platform.engine.process(writer(fidx, ino))
                 for fidx, ino in enumerate(inos)]
        for p in procs:
            yield p
        # Zero data loss: every file reads back exactly what was written.
        for fidx, ino in enumerate(inos):
            m = fs._mem[ino]
            data = fs._collect_data(m, 0, m.size)
            expected = b"".join(
                _payload(fidx * WRITES_PER_FILE + i, NBYTES)
                for i in range(WRITES_PER_FILE))
            assert data == expected, f"/f{fidx}: read-back mismatch"
        if stop_cm:
            fs.cm.stop()

    proc = platform.engine.process(main())
    platform.engine.run()
    assert not proc.is_alive, "workload stalled under faults"
    if not proc.ok:
        raise proc.value
    return fs, plan, platform.engine.now, len(completed)


def reproduce():
    out = {}
    # Baseline: perfect hardware (supervision forced on, so the
    # comparison isolates the cost of faults, not of supervision).
    _fs, _plan, t_clean, _n = _run_workload(dict(seed=0),
                                            fault_tolerant=True)
    out["clean_ns"] = t_clean

    # Headline: a channel halt mid-workload plus a sprinkle of soft
    # and media faults.  All I/O must complete with correct contents.
    fs, plan, t_faulty, n_ops = _run_workload(dict(
        seed=1, p_xfer_error=0.03, p_media=0.03, max_faults=24,
        schedule=(ChannelHaltFault(channel_id=0, at_sn=4),
                  TransferErrorFault(channel_id=1, at_sn=6))))
    out["halt"] = (fs.fault_stats, plan, t_faulty, n_ops)

    # Worst case: every channel halts on its first descriptor, forever.
    # The system must stay live by degrading to memcpy.
    fs2, plan2, t_dead, n2 = _run_workload(
        dict(seed=2, p_chan_halt=1.0, max_faults=10**9),
        fault_tolerant=True, stop_cm=True)
    out["dead"] = (fs2.fault_stats, plan2, t_dead, n2)

    # Crash consistency with crash points inside retry/failover windows.
    out["crash"] = {
        wl: run_crash_test(
            "easyio", wl, crash_points=CRASH_POINTS,
            fault_plan=lambda: FaultPlan(
                seed=42, p_xfer_error=0.02, p_media=0.02, max_faults=24,
                schedule=(ChannelHaltFault(0, 5), TransferErrorFault(1, 9))))
        for wl in sorted(CRASH_WORKLOADS)}
    return out


def test_fault_tolerance(benchmark):
    out = run_once(benchmark, reproduce)
    total_ops = FILES * WRITES_PER_FILE

    stats, plan, t_faulty, n_ops = out["halt"]
    show(banner("EasyIO under a mid-workload channel halt (+ soft/media "
                "faults)"))
    show(fmt_table(["counter", "value"],
                   sorted(stats.as_dict().items())))
    slowdown = t_faulty / out["clean_ns"]
    show(f"completed ops: {n_ops}/{total_ops}   "
         f"makespan: {t_faulty} ns vs clean {out['clean_ns']} ns "
         f"({slowdown:.2f}x)")
    assert n_ops == total_ops, "I/O was lost under faults"
    assert stats.channel_halts >= 1 and stats.channel_resets >= 1
    assert stats.failovers >= 1, "the halt must trigger SN-safe failover"
    assert stats.retries >= 1
    assert stats.availability(n_ops) == 1.0

    dead_stats, _plan2, t_dead, n2 = out["dead"]
    show(banner("Graceful degradation: every channel dead"))
    show(fmt_table(["counter", "value"],
                   sorted(dead_stats.as_dict().items())))
    assert n2 == total_ops, "I/O was lost with all channels dead"
    assert dead_stats.degraded_writes >= 1
    assert dead_stats.degraded_bytes > 0

    show(banner("CrashMonkey under faults (crash points inside "
                "retry/failover windows)"))
    rows = []
    for wl, report in out["crash"].items():
        rows.append([wl, report.total_crash_points, report.passed])
        assert report.all_passed, \
            f"{wl}: {len(report.failures)} failures, " \
            f"e.g. {report.failures[:3]}"
        assert report.total_crash_points >= 900
    show(fmt_table(["workload", "crash points", "passed"], rows))
