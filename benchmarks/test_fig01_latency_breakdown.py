"""Figure 1: latency breakdown of NOVA.

Paper: single-threaded read()/write() with I/O sizes 4K-64K; at 64 KB,
up to ~95 % (read) and ~63 % (write) of CPU cycles go to data copy
(memcpy); metadata/indexing/syscall make up the rest.
"""

from benchmarks.conftest import run_once, show
from repro.analysis.report import banner, fmt_table
from repro.workloads import measure_single_op

SIZES = [4096, 8192, 16384, 32768, 65536]
PHASES = ["metadata", "memcpy", "indexing", "syscall"]


def reproduce():
    out = {}
    for op in ("write", "read"):
        rows = []
        for size in SIZES:
            lat, _cpu, bd = measure_single_op("nova", op, size)
            rows.append((size, lat, bd))
        out[op] = rows
    return out


def test_fig01_nova_latency_breakdown(benchmark):
    data = run_once(benchmark, reproduce)
    show(banner("Figure 1: NOVA latency breakdown (us)"))
    for op, rows in data.items():
        table = []
        for size, lat, bd in rows:
            table.append([f"{size // 1024}K", lat / 1000]
                         + [bd.get(p, 0) / 1000 for p in PHASES]
                         + [f"{bd.get('memcpy', 0) / lat:.0%}"])
        show(f"\n{op.upper()}")
        show(fmt_table(["size", "total", *PHASES, "memcpy%"], table))

    # Shape assertions (paper: memcpy dominates and its share grows
    # with I/O size; read share exceeds write share).
    for op, ceiling in (("write", 0.63), ("read", 0.95)):
        shares = [bd["memcpy"] / lat for _s, lat, bd in data[op]]
        assert shares == sorted(shares), f"{op} memcpy share must grow"
        assert shares[-1] > 0.60, f"{op} 64K memcpy share too small"
    w64 = data["write"][-1]
    r64 = data["read"][-1]
    assert r64[2]["memcpy"] / r64[1] > w64[2]["memcpy"] / w64[1]
    # Latency grows monotonically with I/O size.
    for op in ("write", "read"):
        lats = [lat for _s, lat, _b in data[op]]
        assert lats == sorted(lats)
