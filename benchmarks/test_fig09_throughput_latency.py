"""Figure 9: throughput vs latency as cores increase (FxMark DWAL/DRBL).

Reproduced claims:
* EasyIO peaks its *write* throughput with far fewer cores than NOVA
  (paper: 6 vs 16 at 16 KB = 63 % saved; 2 vs 16 at 64 KB = 88 %).
* EasyIO's peak write throughput is the highest (~1.13x NOVA) and only
  declines slightly at high concurrency, while NOVA collapses (Optane
  write scalability) and NOVA-DMA collapses (multi-channel penalty).
* For reads EasyIO reaches the highest peak; NOVA-DMA peaks early at
  less than half of EasyIO's throughput; EasyIO saves only a little
  read CPU and pays *higher* read latency at high load.
"""

from benchmarks.conftest import run_once, show
from repro.analysis.report import banner, fmt_table
from repro.workloads import FxmarkConfig, run_fxmark

CORES = [1, 2, 4, 6, 8, 12, 16, 18]
KINDS = ["nova", "nova-dma", "odinfs", "easyio"]
PAPER_CORES_AT_PEAK = {
    ("write", 16384): {"nova": 16, "nova-dma": 10, "odinfs": 14, "easyio": 6},
    ("write", 65536): {"nova": 16, "nova-dma": 4, "odinfs": 12, "easyio": 2},
    ("read", 16384): {"nova": 18, "nova-dma": 8, "odinfs": 12, "easyio": 16},
    ("read", 65536): {"nova": 18, "nova-dma": 8, "odinfs": 10, "easyio": 16},
}


def sweep(kind, op, size):
    points = []
    for cores in CORES:
        if kind == "odinfs" and cores > 12:
            break
        r = run_fxmark(FxmarkConfig(kind=kind, op=op, io_size=size,
                                    workers=cores, duration_us=1200,
                                    warmup_us=300))
        points.append((cores, r.throughput_ops, r.mean_us, r.p99_us))
    return points


def cores_at_peak(points, tolerance=0.97):
    peak = max(tp for _c, tp, _m, _p in points)
    for cores, tp, _m, _p in points:
        if tp >= tolerance * peak:
            return cores
    return points[-1][0]


def reproduce():
    return {(op, size): {kind: sweep(kind, op, size) for kind in KINDS}
            for op in ("write", "read") for size in (16384, 65536)}


def test_fig09_throughput_vs_latency(benchmark):
    data = run_once(benchmark, reproduce)
    for (op, size), panel in data.items():
        show(banner(f"Figure 9: {op} {size // 1024}KB"))
        rows = []
        for kind, pts in panel.items():
            for cores, tp, mean, p99 in pts:
                rows.append([kind, cores, tp / 1000, mean, p99])
        show(fmt_table(["fs", "cores", "kops/s", "mean us", "p99 us"], rows))
        peaks = {kind: cores_at_peak(pts) for kind, pts in panel.items()}
        paper = PAPER_CORES_AT_PEAK[(op, size)]
        show(fmt_table(["fs", "cores@peak (measured)", "cores@peak (paper)"],
                       [[k, peaks[k], paper[k]] for k in KINDS]))

    def peak_tp(op, size, kind):
        return max(tp for _c, tp, _m, _p in data[(op, size)][kind])

    # --- write-side claims -------------------------------------------
    for size in (16384, 65536):
        panel = data[("write", size)]
        nova_peak_cores = cores_at_peak(panel["nova"])
        easy_peak_cores = cores_at_peak(panel["easyio"])
        saving = 1 - easy_peak_cores / nova_peak_cores
        assert saving >= 0.5, \
            f"write {size}: EasyIO saves only {saving:.0%} of cores"
        # EasyIO peak write throughput at least matches NOVA's.
        assert peak_tp("write", size, "easyio") >= \
            0.97 * peak_tp("write", size, "nova")
        # NOVA and NOVA-DMA decline at high concurrency; EasyIO holds.
        nova_pts = [tp for _c, tp, _m, _p in panel["nova"]]
        assert nova_pts[-1] < max(nova_pts) * 0.95
        easy_pts = [tp for _c, tp, _m, _p in panel["easyio"]]
        assert easy_pts[-1] >= max(easy_pts) * 0.90
        nd_pts = [tp for _c, tp, _m, _p in panel["nova-dma"]]
        assert nd_pts[-1] < max(nd_pts) * 0.90
    # 64 KB: the paper's headline saving is 88 %; with a strict 97 %
    # peak tolerance our EasyIO needs 4 cores (2 cores reach ~94 % of
    # peak), so we assert >= 60 % and report the exact value.
    p64 = data[("write", 65536)]
    saving64 = 1 - cores_at_peak(p64["easyio"]) / cores_at_peak(p64["nova"])
    show(f"64KB write core saving vs NOVA: {saving64:.0%} (paper: 88%)")
    assert saving64 >= 0.60

    # --- read-side claims -------------------------------------------
    for size in (16384, 65536):
        assert peak_tp("read", size, "easyio") == max(
            peak_tp("read", size, k) for k in KINDS)
        assert peak_tp("read", size, "nova-dma") < \
            0.55 * peak_tp("read", size, "easyio")
    # EasyIO pays higher read latency than NOVA at a matched load.
    nova16 = data[("read", 16384)]["nova"]
    easy16 = data[("read", 16384)]["easyio"]
    target = max(tp for _c, tp, _m, _p in nova16) * 0.8
    nova_lat = next(m for _c, tp, m, _p in nova16 if tp >= target)
    easy_lat = next(m for _c, tp, m, _p in easy16 if tp >= target)
    assert easy_lat > nova_lat
