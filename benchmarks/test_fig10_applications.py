"""Figure 10: throughput of eight real-world applications vs cores.

Paper: EasyIO achieves 2.1x (Snappy), 2.1x (Grep), 1.5x (KNN), 2.3x
(BFS) and 2.3x (Fileserver) higher throughput than NOVA as workers
grow; JPGDecoder and AES (computation-dominated) gain only slightly;
under the Webserver's shared-log contention EasyIO trails Odinfs.
"""

from benchmarks.conftest import run_once, show
from repro.analysis.report import banner, fmt_table
from repro.workloads.apps import run_app

CORES = [2, 4, 8, 12, 16]
#: Paper speedups over NOVA and the bands we assert (min, max).
PAPER = {
    "snappy": (2.1, 1.5, 2.6),
    "jpgdecoder": (1.03, 0.95, 1.45),
    "aes": (1.05, 0.95, 1.3),
    "grep": (2.1, 1.5, 2.6),
    "knn": (1.5, 1.25, 1.9),
    "bfs": (2.3, 1.5, 2.6),
    "fileserver": (2.3, 1.5, 2.6),
}
KINDS = ["nova", "nova-dma", "odinfs", "easyio"]
DURATION = {"jpgdecoder": 120_000}


def sweep(kind, app):
    dur = DURATION.get(app, 25_000)
    out = []
    for cores in CORES:
        if kind == "odinfs" and cores > 12:
            break
        r = run_app(kind, app, cores, duration_us=dur,
                    warmup_us=dur // 5)
        out.append((cores, r.throughput_ops))
    return out


def reproduce():
    apps = list(PAPER) + ["webserver"]
    return {app: {kind: sweep(kind, app) for kind in KINDS}
            for app in apps}


def test_fig10_real_world_applications(benchmark):
    data = run_once(benchmark, reproduce)
    rows = []
    for app, panel in data.items():
        show(banner(f"Figure 10: {app}"))
        table = [[kind] + [f"{tp:.0f}" for _c, tp in pts]
                 for kind, pts in panel.items()]
        show(fmt_table(["fs"] + [f"{c}c" for c in CORES], table))
        nova = dict(panel["nova"])
        easy = dict(panel["easyio"])
        best = max(easy[c] / nova[c] for c in nova if c in easy and nova[c])
        paper = PAPER.get(app, (None,) * 3)[0]
        rows.append([app, f"{best:.2f}x", f"{paper}x" if paper else "-"])
    show(banner("Figure 10 summary: max EasyIO speedup over NOVA"))
    show(fmt_table(["app", "measured", "paper"], rows))

    # Per-app speedup bands.
    for app, (paper, lo, hi) in PAPER.items():
        nova = dict(data[app]["nova"])
        easy = dict(data[app]["easyio"])
        best = max(easy[c] / nova[c] for c in nova if c in easy and nova[c])
        assert lo <= best <= hi, \
            f"{app}: speedup {best:.2f}x outside [{lo}, {hi}] (paper {paper}x)"
    # Compute-dominated apps gain less than I/O-bound apps.
    def best_ratio(app):
        nova = dict(data[app]["nova"])
        easy = dict(data[app]["easyio"])
        return max(easy[c] / nova[c] for c in nova if c in easy and nova[c])
    assert best_ratio("jpgdecoder") < best_ratio("snappy")
    assert best_ratio("aes") < best_ratio("grep")
    # Webserver (shared-log contention): Odinfs beats EasyIO somewhere
    # in the sweep (the paper's §6.6 limitation).
    web = data["webserver"]
    odin = dict(web["odinfs"])
    easy = dict(web["easyio"])
    assert any(odin[c] > easy[c] for c in odin if c in easy), \
        "Odinfs should lead the webserver under contention"
    # NOVA-DMA never exceeds EasyIO on the I/O-bound apps (sync DMA
    # leaves no cycles to harvest).
    for app in ("snappy", "grep", "bfs"):
        nd = dict(data[app]["nova-dma"])
        easy = dict(data[app]["easyio"])
        assert all(easy[c] >= nd[c] * 0.95 for c in nd if c in easy)
