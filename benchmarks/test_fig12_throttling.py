"""Figure 12: effectiveness of bandwidth throttling.

Paper: a web server (L-app, 64 KB reads, Poisson arrivals) colocated
with a garbage collector (B-app, periodic 2 MB bulk movement).  With
No-Throttling and CPU-Throttling the web server's latency spikes as
soon as the GC starts (~2.5x); DMA-Throttling (the channel manager
suspending/resuming the B channel at µs scale) keeps it ~40 % lower.
CPU-Throttling fails because the GC's traffic moves via the DMA
engine, not via CPU load/store.
"""

from benchmarks.conftest import run_once, show
from repro.analysis.report import banner, fmt_table, sparkline
from repro.workloads.apps import run_webserver_gc

MODES = ["none", "cpu", "dma"]


def reproduce():
    return {mode: run_webserver_gc(mode, duration_us=24_000)
            for mode in MODES}


def gc_mean(result):
    vals = [v for t, v in result.timeline.points
            if any(s <= t < e for s, e in result.gc_windows)]
    return sum(vals) / len(vals)


def idle_mean(result):
    vals = [v for t, v in result.timeline.points
            if not any(s <= t < e for s, e in result.gc_windows)]
    return sum(vals) / len(vals)


def test_fig12_bandwidth_throttling(benchmark):
    results = run_once(benchmark, reproduce)
    show(banner("Figure 12: web-server latency under a colocated GC"))
    rows = []
    for mode, r in results.items():
        label = {"none": "No-Throttling", "cpu": "CPU-Throttling",
                 "dma": "DMA-Throttling"}[mode]
        rows.append([label, idle_mean(r), gc_mean(r),
                     r.max_latency_us(during_gc=True)])
        values = [v for _t, v in r.timeline.bucketed(400_000)]
        show(f"{label:15s} |{sparkline(values)}|")
    show(fmt_table(["mode", "idle mean us", "GC mean us", "GC max us"], rows))

    none, cpu, dma = (results[m] for m in MODES)
    # The GC visibly hurts the unthrottled web server.
    assert gc_mean(none) > 1.25 * idle_mean(none)
    # CPU-Throttling is ineffective (within 15 % of No-Throttling).
    assert abs(gc_mean(cpu) - gc_mean(none)) < 0.15 * gc_mean(none)
    # DMA-Throttling removes most of the GC-induced latency *excess*
    # (latency above the idle baseline); the paper reports ~40 % lower
    # max latency.
    def excess(r):
        return max(0.0, gc_mean(r) - idle_mean(r))
    assert excess(dma) < 0.6 * excess(none), \
        f"dma excess {excess(dma):.1f}us vs none {excess(none):.1f}us"
    assert excess(dma) < 0.7 * excess(cpu)
    improvement = 1 - excess(dma) / excess(none)
    show(f"DMA-throttling GC-excess reduction: {improvement:.0%} "
         f"(paper: ~40% on max latency)")
    # The regulation loop actually adapted the B-app limit (Listing 1).
    assert results["dma"].b_limit_trace, "Listing-1 loop never adjusted"
