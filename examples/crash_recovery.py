#!/usr/bin/env python3
"""Crash in the middle of an asynchronous write, then recover (§4.2).

EasyIO commits a write's metadata (with embedded DMA sequence numbers)
*before* the data lands.  If the machine dies in that window, recovery
compares each committed block mapping's SN against the channel's
persistent completion buffer and discards mappings whose DMA never
finished -- falling back to the previous (CoW-preserved) data.

This example:
1. writes generation-1 data and lets it complete;
2. starts a generation-2 overwrite and "pulls the plug" right after
   its metadata commit but before its DMA finishes;
3. replays the persist-ordered mutation journal into a fresh image
   (exactly a power failure) and recovers;
4. shows that the file cleanly contains generation-1 data.

Run:  python examples/crash_recovery.py
"""

from repro import Platform, fs_class, make_fs, recover
from repro.fs.recovery import completion_buffer_validator

GEN1 = b"\x11" * 65536
GEN2 = b"\x22" * 65536

platform = Platform()
fs = make_fs("easyio", platform, record=True)
engine = platform.engine
crash_point = {}


def workload():
    ino = yield from fs.create(fs.context(), "/db.log")
    r1 = yield from fs.write(fs.context(), ino, 0, len(GEN1), GEN1)
    yield r1.pending
    print(f"[{engine.now:>7} ns] generation-1 write durable "
          f"(SNs {r1.sns}, completion buffers "
          f"{dict(fs.image.completion_buffers)})")

    r2 = yield from fs.write(fs.context(), ino, 0, len(GEN2), GEN2)
    # The syscall has returned: metadata for generation 2 is already
    # committed, but its DMA is still in flight...
    entry = fs.image.committed_log(ino)[-1]
    print(f"[{engine.now:>7} ns] generation-2 metadata committed "
          f"(entry SNs {entry.sns}); DMA still in flight -- CRASH NOW")
    crash_point["at"] = len(fs.image.mutations)
    crash_point["ino"] = ino
    yield r2.pending   # (let the live run finish cleanly)


proc = engine.process(workload())
platform.run()
if not proc.ok:
    raise proc.value

# ---- power failure: replay the persist-order prefix -------------------
crashed_image = fs.image.replay(crash_point["at"])
print(f"\nsimulating power failure at persist #{crash_point['at']} "
      f"of {fs.image.crash_points()}")

recovered_platform = Platform()
# Resolve through the registry; construct without mounting (recovery
# rebuilds the volatile state from the crashed image instead).
recovered = fs_class("easyio")(recovered_platform, crashed_image)
recover(recovered, completion_buffer_validator(crashed_image))
print(f"recovery discarded {recovered.recovered_discarded_entries} "
      f"committed-but-unfinished log entr"
      f"{'y' if recovered.recovered_discarded_entries == 1 else 'ies'}")

m = recovered.minode(crash_point["ino"])
data = recovered._collect_data(m, 0, m.size)
if data == GEN1:
    print("file content after recovery: generation 1 -- consistent!")
elif data == GEN2:
    print("file content after recovery: generation 2 (DMA had finished)")
else:
    raise SystemExit("TORN DATA -- recovery failed")
