#!/usr/bin/env python3
"""Quickstart: mount EasyIO, write and read files asynchronously.

Shows the core mechanics of the paper in ~60 lines:

* a large ``write()`` returns *before* its data lands -- the DMA engine
  moves it while the CPU does other things (the OpResult carries the
  pending completion and the SNs embedded in the metadata);
* a <=4 KB write takes the synchronous memcpy path (selective offload);
* the persistent completion buffers advance as DMAs finish;
* read-back verifies the data survived the round trip.

Run:  python examples/quickstart.py
"""

from repro import Platform, make_fs

platform = Platform()                 # the paper's 36-core, 6-DIMM testbed
fs = make_fs("easyio", platform)      # resolved through the fs registry
engine = platform.engine


def main():
    ctx = fs.context()
    ino = yield from fs.create(ctx, "/hello.dat")
    print(f"[{engine.now:>8} ns] created /hello.dat (inode {ino})")

    # -- a large, DMA-offloaded write --------------------------------
    payload = bytes(range(256)) * 256            # 64 KiB
    ctx = fs.context()
    result = yield from fs.write(ctx, ino, 0, len(payload), payload)
    print(f"[{engine.now:>8} ns] write() returned: {result.value} bytes, "
          f"async={result.is_async}, SNs={result.sns}")
    print(f"            CPU spent in the syscall: {ctx.cpu_ns} ns "
          f"(the rest of the copy happens in the DMA engine)")

    yield result.pending                         # wait for the data to land
    print(f"[{engine.now:>8} ns] DMA completed; persistent completion "
          f"buffers: {dict(fs.image.completion_buffers)}")

    # -- a small write stays on the CPU (selective offloading) -------
    ctx = fs.context()
    small = yield from fs.write(ctx, ino, len(payload), 4096, b"x" * 4096)
    print(f"[{engine.now:>8} ns] 4 KiB write: async={small.is_async} "
          f"(memcpy path)")

    # -- read it all back ---------------------------------------------
    ctx = fs.context()
    rd = yield from fs.read(ctx, ino, 0, len(payload) + 4096, want_data=True)
    if rd.is_async:
        yield rd.pending
    ok = rd.value == payload + b"x" * 4096
    print(f"[{engine.now:>8} ns] read back {len(rd.value)} bytes: "
          f"{'OK' if ok else 'MISMATCH'}")
    assert ok

    st = yield from fs.stat(fs.context(), "/hello.dat")
    print(f"[{engine.now:>8} ns] stat: size={st[2]}, links={st[4]}")


proc = engine.process(main())
platform.run()
if not proc.ok:
    raise proc.value
print(f"\nsimulated time elapsed: {engine.now / 1000:.2f} us; "
      f"DMA writes: {fs.dma_writes}, memcpy writes: {fs.memcpy_writes}")
