#!/usr/bin/env python3
"""Kill the primary mid-workload and watch the cluster fail over.

Runs a 3-node replicated cluster (DESIGN.md §12) with two closed-loop
clients while a seeded fault plan crashes the primary at t = 2 ms for
15 ms.  The lease lapses, a caught-up backup wins the election, the
clients redirect, and the rebooted old primary rejoins as a backup.
The whole run is traced, replayed through the cluster oracles
(ack-implies-quorum-durable, SN monotonicity, one primary per lease
epoch), and written as Chrome-trace-event JSON.

Open the output at https://ui.perfetto.dev: the ``net`` track carries
ship ranges and the crash/restart instants, ``lease`` the epoch
grants, and each ``node{N}`` its applies/truncations/acks -- the
failover reads left to right as silence, election, no-op seal, then
shipping resuming under epoch 2.

Run:  PYTHONPATH=src python examples/replication_failover.py [out.json]
"""

import sys

from repro import TraceChecker, default_tracing
from repro.net import NodeCrashFault
from repro.workloads import ReplicationConfig, run_replication

OUT = sys.argv[1] if len(sys.argv) > 1 else "replication_failover.json"

config = ReplicationConfig(
    n_nodes=3, n_clients=2, writes_per_client=15, seed=42,
    schedule=(NodeCrashFault(0, at_ns=2_000_000, down_ns=15_000_000),),
    check_oracles=False)  # checked below, against the collected tracer

tracers = []
with default_tracing(collect=tracers):
    result = run_replication(config)
tracer = tracers[0]

print(f"acked {result.acked}/{result.offered} writes "
      f"(goodput {result.goodput:.2f}, "
      f"{result.goodput_ops_per_sec / 1000:.1f} kops/s)")
for t, epoch, node, _expires in result.lease_log:
    print(f"  lease epoch {epoch} -> node {node} at t={t / 1000:.0f} us")
for t in result.failover_times_ns:
    print(f"  failover completed {t / 1000:.0f} us after the crash")
assert result.drained and result.goodput == 1.0
assert [e for _, e, _, _ in result.lease_log] == [1, 2]

violations = TraceChecker().check(tracer.events)
for v in violations:
    print(f"  VIOLATION {v}")
assert not violations, f"{len(violations)} trace-invariant violation(s)"
print(f"cluster oracles: all clean over {tracer.emitted} events")

tracer.dump_json(OUT)
print(f"wrote {OUT} -- open it at https://ui.perfetto.dev")
