#!/usr/bin/env python3
"""Colocating a latency-critical web server with a bulk garbage
collector, with and without the channel manager's DMA throttling (§4.4).

Reproduces the Figure 12 scenario interactively: a Poisson-arrival web
server (L-app, 64 KB reads, 21 µs SLO) shares the machine with a GC
that periodically moves 2 MB through the filesystem (B-app).  Three
policies are compared:

* No-Throttling      -- the GC's DMA traffic starves the web server;
* CPU-Throttling     -- useless: the GC barely uses the CPU;
* DMA-Throttling     -- the channel manager suspends/resumes the GC's
                        DMA channel (CHANCMD, 74 ns) at µs timescales
                        under the Listing-1 SLO feedback loop.

Run:  python examples/qos_colocation.py
"""

from repro.analysis.report import fmt_table, sparkline
from repro.workloads.apps import run_webserver_gc


def stats(result):
    def mean(during_gc):
        vals = [v for t, v in result.timeline.points
                if any(s <= t < e for s, e in result.gc_windows) == during_gc]
        return sum(vals) / len(vals) if vals else 0.0
    return mean(False), mean(True), result.max_latency_us(during_gc=True)


def main():
    rows = []
    print("web-server request latency over time (one char ~ 400 us):\n")
    for mode, label in (("none", "No-Throttling"),
                        ("cpu", "CPU-Throttling"),
                        ("dma", "DMA-Throttling")):
        result = run_webserver_gc(mode, duration_us=24_000)
        idle, gc, gc_max = stats(result)
        rows.append([label, idle, gc, gc_max])
        trace = [v for _t, v in result.timeline.bucketed(400_000)]
        print(f"  {label:15s} |{sparkline(trace)}|")
        if mode == "dma":
            changes = len(result.b_limit_trace)
            print(f"  {'':15s} (Listing-1 loop adjusted the B-app "
                  f"bandwidth limit {changes} times)")
    print()
    print(fmt_table(["policy", "idle mean us", "GC-window mean us",
                     "GC-window max us"], rows))
    print("\nCPU throttling cannot regulate traffic that never touches "
          "the CPU; suspending the DMA channel can.")


if __name__ == "__main__":
    main()
