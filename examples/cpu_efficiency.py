#!/usr/bin/env python3
"""The paper's headline: EasyIO reaches peak write bandwidth with a
fraction of the cores a synchronous filesystem needs.

Sweeps worker cores for NOVA (synchronous memcpy) and EasyIO
(asynchronous DMA + uthread scheduling) on the FxMark private-file
64 KB write workload and prints throughput, CPU busy fraction, and the
cores needed to reach (approximately) peak throughput.

Run:  python examples/cpu_efficiency.py
"""

from repro.analysis.report import fmt_table
from repro.workloads import FxmarkConfig, run_fxmark

CORES = [1, 2, 4, 8, 12, 16]
IO_SIZE = 64 * 1024


def sweep(kind):
    points = []
    for cores in CORES:
        r = run_fxmark(FxmarkConfig(kind=kind, op="write", io_size=IO_SIZE,
                                    workers=cores, duration_us=1500,
                                    warmup_us=400))
        points.append((cores, r.bandwidth_gbps, r.mean_us,
                       r.cpu_busy_fraction))
    return points


def main():
    results = {kind: sweep(kind) for kind in ("nova", "easyio")}
    for kind, pts in results.items():
        print(f"\n=== {kind.upper()} : 64 KiB writes, private files ===")
        print(fmt_table(
            ["cores", "bandwidth GB/s", "mean latency us", "CPU busy"],
            [[c, bw, lat, f"{busy:.0%}"] for c, bw, lat, busy in pts]))

    def cores_at_peak(pts, tol=0.95):
        peak = max(bw for _c, bw, _l, _b in pts)
        return next(c for c, bw, _l, _b in pts if bw >= tol * peak)

    nova_c = cores_at_peak(results["nova"])
    easy_c = cores_at_peak(results["easyio"])
    print(f"\ncores to reach ~peak bandwidth:  NOVA={nova_c}  "
          f"EasyIO={easy_c}")
    print(f"EasyIO saves {1 - easy_c / nova_c:.0%} of the cores "
          f"(paper: up to 88%) -- the harvested cycles are what the "
          f"eight applications in examples/ and benchmarks/ spend on "
          f"real work.")


if __name__ == "__main__":
    main()
