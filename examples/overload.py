#!/usr/bin/env python3
"""What happens when offered load exceeds the data path's capacity.

An open-loop Poisson stream (arrivals do not slow down when the system
backs up) drives the EasyIO runtime at ~3x its 2-core capacity, four
ways:

* unprotected          -- queues and p99 grow with the burst length;
* deadline-only        -- per-request deadlines bound p99, but only
                          after wasting queue time (poor goodput);
* admission (reject)   -- a queue-depth gate fails the excess fast,
                          bounding backlog AND beating the deadline-only
                          goodput;
* admission (shed)     -- same, but high-priority requests ride through.

Every run is deterministic (seeded arrivals, simulated clock).

Run:  python examples/overload.py
"""

from repro.analysis.report import fmt_counters, fmt_table
from repro.workloads.overload import OverloadConfig, run_overload

RATE = 600_000
DURATION_US = 2000
DEADLINE_US = 300
QDEPTH = 16


def main():
    configs = [
        ("unprotected", OverloadConfig(
            arrival_rate_ops_per_sec=RATE, duration_us=DURATION_US,
            deadline_us=None)),
        ("deadline-only", OverloadConfig(
            arrival_rate_ops_per_sec=RATE, duration_us=DURATION_US,
            deadline_us=DEADLINE_US)),
        ("admission/reject", OverloadConfig(
            arrival_rate_ops_per_sec=RATE, duration_us=DURATION_US,
            deadline_us=DEADLINE_US, admission_policy="reject",
            max_queue_depth=QDEPTH, watchdog=True)),
        ("admission/shed", OverloadConfig(
            arrival_rate_ops_per_sec=RATE, duration_us=DURATION_US,
            deadline_us=DEADLINE_US, admission_policy="shed",
            max_queue_depth=QDEPTH, priority_fraction=0.2)),
    ]
    rows = []
    last = None
    for name, cfg in configs:
        r = last = run_overload(cfg)
        rows.append([name, r.offered, r.completed, r.rejected,
                     r.deadline_missed, r.queue_high_water,
                     f"{r.p99_us:.0f}", f"{r.goodput:.2f}",
                     r.drain_ns // 1000])
    print(f"open-loop overload: {RATE // 1000}k ops/s offered on 2 cores "
          f"for {DURATION_US} us ({DEADLINE_US} us deadlines)\n")
    print(fmt_table(["config", "offered", "done", "rej", "miss",
                     "queue hw", "p99 us", "goodput", "drain us"], rows))
    print()
    print(fmt_counters("admission/shed counters", last.stats))
    print("\nRejecting early is kinder than failing late: the admission "
          "gate turns excess load into fast failures, so the requests "
          "that ARE admitted keep a bounded p99 -- and more of them "
          "finish in time than with deadlines alone.")


if __name__ == "__main__":
    main()
