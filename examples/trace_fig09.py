#!/usr/bin/env python3
"""Dump a Perfetto-openable trace of one Figure 9 sweep point.

Runs a single FxMark point (EasyIO, 4 workers, 16 KB writes -- one
cell of the Figure 9 throughput/latency sweep) with sim-time tracing
enabled, replays the stream through the invariant oracles, and writes
Chrome-trace-event JSON.

Open the output at https://ui.perfetto.dev (or chrome://tracing): one
row per DMA channel (submit/complete/CHANCMD instants), one per
in-flight op (the write span with its plan/submit children), plus the
fs commit/ack, persist, and runtime park/wake tracks.

Run:  PYTHONPATH=src python examples/trace_fig09.py [out.json]
"""

import sys

from repro import TraceChecker, default_tracing
from repro.workloads import FxmarkConfig
from repro.workloads.fxmark import run_fxmark

OUT = sys.argv[1] if len(sys.argv) > 1 else "fig09_trace.json"

config = FxmarkConfig(kind="easyio", op="write", io_size=16384,
                      workers=4, duration_us=300, warmup_us=100)

tracers = []
with default_tracing(collect=tracers):
    result = run_fxmark(config)

tracer = tracers[0]
print(f"sweep point: {config.kind}/{config.op}/{config.workers}w "
      f"-> {result.throughput_ops / 1e6:.3f} Mops/s, "
      f"p99 {result.p99_us:.2f} us")
print(f"traced {tracer.emitted} events on "
      f"{len({ev.track for ev in tracer.events})} tracks")

violations = TraceChecker().check(tracer.events)
for v in violations:
    print(f"  VIOLATION {v}")
assert not violations, f"{len(violations)} trace-invariant violation(s)"
print("invariant oracles: all clean")

tracer.dump_json(OUT)
print(f"wrote {OUT} -- open it at https://ui.perfetto.dev")
