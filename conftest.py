"""Wall-clock safety net: no test may hang the suite.

The simulator's failure mode for a lost wakeup used to be an engine
that never drains -- i.e. a silently hung pytest run.  The watchdog
(DESIGN.md §8) converts in-simulation hangs into drained engines, and
this cap converts everything else (a genuine infinite loop in the
harness itself) into a failed test.

When the pytest-timeout plugin is installed (the ``dev`` extra; CI
installs it) it enforces the ``timeout`` ini option from pyproject.toml
and this file stays out of its way.  Without the plugin we register the
same ini option ourselves (so pytest does not warn about it) and
enforce it with SIGALRM where the platform supports that.
"""

import signal

import pytest

try:
    import pytest_timeout  # noqa: F401
    _HAVE_PLUGIN = True
except ImportError:
    _HAVE_PLUGIN = False

_DEFAULT_TIMEOUT_S = 120


def pytest_addoption(parser):
    if not _HAVE_PLUGIN:
        parser.addini("timeout",
                      "per-test wall-clock cap in seconds "
                      "(fallback for the pytest-timeout plugin)",
                      default=None)


if not _HAVE_PLUGIN and hasattr(signal, "SIGALRM"):

    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_call(item):
        raw = item.config.getini("timeout")
        seconds = int(float(raw)) if raw else _DEFAULT_TIMEOUT_S

        def _expired(signum, frame):
            raise TimeoutError(
                f"{item.nodeid} exceeded the {seconds}s wall-clock cap")

        old_handler = signal.signal(signal.SIGALRM, _expired)
        old_alarm = signal.alarm(seconds)
        try:
            return (yield)
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, old_handler)
            if old_alarm:
                signal.alarm(old_alarm)
